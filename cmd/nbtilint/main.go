// Command nbtilint is the multichecker for the repository's custom
// static analyzers (internal/lint): detmap, wallclock, rngsource,
// floatcmp, netshare, arenaalias, packedidx and globalmut — the
// machine-checked form of the determinism and engine-safety invariants
// documented in DESIGN.md.
//
// It runs in two modes:
//
//   - As a vet tool, speaking the go vet unitchecker protocol
//     (-V=full, -flags, and a *.cfg unit description):
//
//     go vet -vettool=$(pwd)/bin/nbtilint ./...
//
//   - Standalone, where it re-executes itself through "go vet" so the
//     build system handles package loading and export data:
//
//     go run ./cmd/nbtilint ./...
//
// The fact-based analyzers (netshare, arenaalias) exchange
// gob-serialized facts through the .vetx files the protocol already
// passes between units: each unit decodes the facts of its
// dependencies (PackageVetx), analyzes with them in scope, and writes
// the union of inherited and newly exported facts to VetxOutput, so
// observations propagate transitively across the package graph.
// Fact-only dependency runs (VetxOnly) execute just the fact analyzers
// with diagnostics discarded — and skip even that when the unit
// neither inherits facts nor contains an //nbtilint: directive.
//
// Individual analyzers can be disabled per invocation with the
// standard vet flag mechanism: go vet -vettool=... -netshare=false.
//
// `make lint` builds the binary and runs it over ./...; the target is
// chained into `make all`, so the whole tree stays at zero diagnostics.
//
// Exit status: 0 for a clean tree, non-zero when diagnostics were
// reported (via go vet) or the tool itself failed.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"nbtinoc/internal/lint"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		printFlags(os.Stdout)
	case len(args) == 1 && (args[0] == "-list" || args[0] == "--list"):
		printAnalyzers(os.Stdout)
	case len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg"):
		enabled := parseUnitFlags(args[:len(args)-1])
		os.Exit(runUnit(args[len(args)-1], enabled))
	default:
		os.Exit(standalone(args))
	}
}

// printVersion implements -V=full in the exact shape cmd/go's buildID
// parser expects ("<name> version devel buildID=<hex>"). The hash mixes
// the executable bytes with the suite fingerprint (analyzer names plus
// fact schemas), so go vet's result cache — and any CI cache keyed on
// this output — invalidates when the analyzers change behavior or when
// a fact's wire shape changes even without a behavioral difference on
// some package.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatalf("cannot locate own executable: %v", err)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fatalf("cannot read own executable: %v", err)
	}
	h := sha256.New()
	h.Write(data)
	io.WriteString(h, lint.SuiteFingerprint())
	fmt.Printf("%s version devel buildID=%02x\n", filepath.Base(exe), h.Sum(nil))
}

// printFlags implements the -flags probe: cmd/go interrogates a vet
// tool for the flags it accepts and forwards matching command-line
// flags ahead of the .cfg argument. nbtilint exposes one boolean per
// analyzer so individual checks can be switched off per invocation.
func printFlags(w io.Writer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := make([]jsonFlag, 0, len(lint.All()))
	for _, a := range lint.All() {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " analyzer"})
	}
	if err := json.NewEncoder(w).Encode(flags); err != nil {
		fatalf("encoding -flags output: %v", err)
	}
}

// parseUnitFlags consumes the per-analyzer boolean flags cmd/go passes
// before the unit config path, returning the enabled-analyzer set.
func parseUnitFlags(args []string) map[string]bool {
	fs := flag.NewFlagSet("nbtilint", flag.ContinueOnError)
	vals := make(map[string]*bool, len(lint.All()))
	for _, a := range lint.All() {
		vals[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		fatalf("parsing analyzer flags: %v", err)
	}
	if fs.NArg() != 0 {
		fatalf("unexpected arguments before unit config: %v", fs.Args())
	}
	enabled := make(map[string]bool, len(vals))
	for _, a := range lint.All() {
		enabled[a.Name] = *vals[a.Name]
	}
	return enabled
}

// enabledAnalyzers filters the suite by the flag set.
func enabledAnalyzers(enabled map[string]bool) []*lint.Analyzer {
	var out []*lint.Analyzer
	for _, a := range lint.All() {
		if enabled == nil || enabled[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

func printAnalyzers(w io.Writer) {
	fmt.Fprintln(w, "nbtilint analyzers:")
	for _, a := range lint.All() {
		fmt.Fprintf(w, "\n  %s\n      %s\n", a.Name, a.Doc)
	}
}

// standalone re-executes nbtilint through "go vet -vettool", which
// loads packages, produces export data for dependencies, and calls this
// same binary back in unitchecker mode once per package. Analyzer
// flags in args (e.g. -netshare=false) pass through go vet untouched.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fatalf("cannot locate own executable: %v", err)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fatalf("go vet: %v", err)
	}
	return 0
}

// unitConfig mirrors the JSON unit description cmd/go writes for vet
// tools (the x/tools unitchecker Config). Fields nbtilint does not
// consume are listed anyway so the decode is self-documenting.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package unit and returns the process exit code
// (0 clean, 1 tool failure, 2 diagnostics reported — the same contract
// as x/tools' unitchecker).
func runUnit(cfgPath string, enabled map[string]bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading unit config: %v", err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing unit config %s: %v", cfgPath, err)
	}
	suite := enabledAnalyzers(enabled)
	imported := importFacts(&cfg)
	writeVetx := func(facts *lint.FactSet) {
		if cfg.VetxOutput == "" {
			return
		}
		var payload []byte
		if facts != nil && facts.Len() > 0 {
			payload, err = facts.Encode()
			if err != nil {
				fatalf("%v", err)
			}
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			fatalf("writing facts: %v", err)
		}
	}

	if cfg.VetxOnly {
		factSuite := lint.FactAnalyzers(suite)
		// Fast path: with no inherited facts and no //nbtilint: directive
		// anywhere in the sources, the fact analyzers cannot derive
		// anything — skip parsing and typechecking entirely. This keeps
		// the dependency passes over the standard library near-free.
		if len(factSuite) == 0 || (imported.Len() == 0 && !sourcesHaveDirectives(cfg.GoFiles)) {
			writeVetx(imported)
			return 0
		}
		res, ok := analyzeUnit(&cfg, factSuite, imported)
		if !ok {
			writeVetx(nil)
			return 0 // SucceedOnTypecheckFailure
		}
		// Diagnostics are deliberately discarded: a fact-only pass
		// answers for the unit's dependents, not for the unit itself.
		imported.Merge(res.Facts)
		writeVetx(imported)
		return 0
	}

	res, ok := analyzeUnit(&cfg, suite, imported)
	if !ok {
		writeVetx(nil)
		return 0 // SucceedOnTypecheckFailure
	}
	// Re-export inherited facts alongside this unit's own, so the
	// property flows transitively even through packages that add
	// nothing themselves.
	imported.Merge(res.Facts)
	writeVetx(imported)
	if len(res.Diagnostics) == 0 {
		return 0
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	return 2
}

// importFacts decodes and merges the .vetx payloads of every direct
// dependency, in sorted import-path order for determinism.
func importFacts(cfg *unitConfig) *lint.FactSet {
	imported := lint.NewFactSet()
	paths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil {
			// A dependency whose facts pass produced nothing writes an
			// empty file; a missing file means the build system did not
			// schedule a facts pass for it at all. Either way there is
			// nothing to import.
			continue
		}
		facts, err := lint.DecodeFacts(data)
		if err != nil {
			fatalf("facts of dependency %s: %v", p, err)
		}
		imported.Merge(facts)
	}
	return imported
}

// sourcesHaveDirectives reports whether any unit source file contains
// an //nbtilint: directive — a cheap byte scan that gates the VetxOnly
// fast path.
func sourcesHaveDirectives(files []string) bool {
	needle := []byte("//nbtilint:")
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			// Let the real parse produce the authoritative error.
			return true
		}
		if bytes.Contains(data, needle) {
			return true
		}
	}
	return false
}

// analyzeUnit parses, typechecks and runs the given analyzers over one
// unit. ok is false when the unit fails to parse or typecheck and the
// config says to succeed anyway; hard failures exit via fatalf.
func analyzeUnit(cfg *unitConfig, suite []*lint.Analyzer, imported *lint.FactSet) (lint.SuiteResult, bool) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return lint.SuiteResult{}, false
			}
			fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}

	// Dependencies are imported from the export data the build system
	// already produced, exactly as the compiler itself would see them.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(error) {}, // collect as many files as possible; Check returns the first error
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return lint.SuiteResult{}, false
		}
		fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	res, err := lint.RunSuiteFacts(suite, fset, files, pkg, info, cfg.ImportPath, imported)
	if err != nil {
		fatalf("%v", err)
	}
	return res, true
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "nbtilint: "+format+"\n", args...)
	os.Exit(1)
}
