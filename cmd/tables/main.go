// Command tables regenerates every table and derived figure of the
// paper's evaluation:
//
//	-table 1     Table I   — experimental setup as realised by this model
//	-table 2     Table II  — synthetic traffic, 4 VCs
//	-table 3     Table III — synthetic traffic, 2 VCs
//	-table 4     Table IV  — SPLASH2/WCET benchmark mixes, 2 VCs
//	-table area  Section III-D area overheads
//	-table vth   conclusion claim: net ΔVth saving vs baseline
//	-table coop  conclusion claim: cooperation ablation
//	-table perf    extension: NBTI/performance trade-off sweep
//	-table power   extension: leakage/energy impact of the gating
//	-table sensors extension: sensor non-ideality robustness study
//	-table corners extension: lifetime across temperature/Vdd corners
//	-table dse     extension: VC/buffer-depth design-space exploration
//	-table rr      extension: rr-no-sensor rotation-period study
//	-table all   everything above
//
// The -quick flag shortens the simulation windows for smoke runs; -full
// uses the paper's 30e6-cycle windows (slow). -mesh WxH swaps the
// paper's 4-/16-core sweep of the synthetic tables for one explicit
// mesh geometry, for big-mesh scaling runs (e.g. -mesh 32x32).
//
// Independent scenarios within a table run concurrently on a bounded
// worker pool; -j caps the workers (0 = one per core, 1 = sequential).
// The output is identical for every -j value. With -table all, each
// table additionally reports its wall-clock time.
//
// Results are memoized in a content-addressed on-disk cache (-cache,
// -cache-dir): rerunning an already-computed table serves it from disk
// byte-identically. -cache=off disables it, -cache=ro reuses entries
// without writing new ones; -v prints hit/miss statistics to stderr.
//
// -cpuprofile, -memprofile and -trace write the standard Go runtime
// profiles for the whole run, for digging into simulator hot spots.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"nbtinoc/internal/area"
	"nbtinoc/internal/cache"
	"nbtinoc/internal/metrics"
	"nbtinoc/internal/noc"
	"nbtinoc/internal/prof"
	"nbtinoc/internal/sim"
	"nbtinoc/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	var profFlags prof.Flags
	profFlags.Register(fs, "trace")
	var metFlags metrics.CLIFlags
	metFlags.Register(fs)
	var (
		table   = fs.String("table", "all", "table to regenerate: 1, 2, 3, 4, area, vth, coop, perf, power, sensors, corners, dse, rr, all")
		warmup  = fs.Uint64("warmup", 20_000, "warm-up cycles")
		measure = fs.Uint64("measure", 200_000, "measured cycles")
		iters   = fs.Int("iters", 10, "benchmark-mix iterations for Table IV")
		seed    = fs.Uint64("seed", 1, "base seed for PV and traffic")
		years   = fs.Float64("years", 3, "ΔVth projection horizon in years")
		wakeup  = fs.Int("wakeup", 0, "sleep-transistor wake-up latency for -table perf")
		mesh    = fs.String("mesh", "", "run the synthetic tables (2, 3) on one mesh geometry WxH, e.g. 16x16 (default: the paper's 4- and 16-core sweep)")
		quick   = fs.Bool("quick", false, "short windows for a fast smoke run")
		full    = fs.Bool("full", false, "paper-length 30e6-cycle windows (slow)")
		phits   = fs.Int("phits", 2, "link serialization (64-bit flits over 32-bit links = 2)")
		csvDir  = fs.String("csv", "", "also write machine-readable CSV files into this directory")
		jobs    = fs.Int("j", 0, "parallel scenario workers: 0 = one per core, 1 = sequential (output is identical either way)")

		cacheMode = fs.String("cache", "rw", "result cache mode: off, ro or rw")
		cacheDir  = fs.String("cache-dir", "", "result cache directory (default: user cache dir)")
		sweepOut  = fs.String("sweep-manifest", "", "record every cached scenario into a sweep manifest at this path (replayable with nbtisweep)")
		verbose   = fs.Bool("v", false, "print result-cache statistics to stderr")
		engineVer = fs.Bool("engine-version", false, "print the engine fingerprint baked into cache keys, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *engineVer {
		fmt.Fprintln(out, sim.EngineVersion)
		return nil
	}
	stopProf, err := profFlags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	// -v forces a registry so the progress line has counters to read.
	// Setup must precede openCache and every table run: instruments are
	// resolved at construction time against the then-current default.
	finishMet, err := metFlags.Setup(*verbose, prof.HTTPHandler(), func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tables: "+format+"\n", args...)
	})
	if err != nil {
		return err
	}
	defer func() {
		if merr := finishMet(); merr != nil && err == nil {
			err = merr
		}
	}()
	// phase names the table currently regenerating, for the -v progress
	// line served alongside cycles/sec and job completion.
	var phase atomic.Value
	phase.Store("")
	if *verbose {
		stop := startProgress("tables", &metrics.Progress{
			R:          metrics.Default(),
			Cycles:     noc.MetricCycles,
			JobsDone:   sim.MetricJobsDone,
			JobsTotal:  sim.MetricJobsTotal,
			SampleHeap: true,
			Phase:      func() string { s, _ := phase.Load().(string); return s },
			Extra:      ffRatioExtra(metrics.Default()),
		})
		defer stop()
	}
	if *quick {
		*warmup, *measure, *iters = 2_000, 20_000, 3
	}
	if *full {
		*warmup, *measure = 9_000_000, 21_000_000
	}
	store, err := openCache("tables", *cacheMode, *cacheDir)
	if err != nil {
		return err
	}
	// -sweep-manifest records every cache-keyed scenario this run
	// executes, so a table regeneration doubles as a sweep campaign
	// definition nbtisweep can shard and resume.
	var recorder *sweep.Recorder
	if *sweepOut != "" {
		recorder = sweep.NewRecorder("tables-" + *table)
	}
	opt := sim.DefaultTableOptions()
	opt.Warmup, opt.Measure, opt.SeedBase = *warmup, *measure, *seed
	opt.Phits = *phits
	opt.Parallelism = *jobs
	opt.Cache = store
	if recorder != nil {
		opt.Record = recorder.Record
	}
	if *mesh != "" {
		m, err := sim.ParseMesh(*mesh)
		if err != nil {
			return err
		}
		opt.Meshes = []sim.Mesh{m}
	}

	writeCSV := func(name, content string) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*csvDir, name), []byte(content), 0o644)
	}
	render := func(tbl interface{ Render() string }, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintln(out, tbl.Render())
		return nil
	}
	renderCSV := func(csvName string) func(tbl interface {
		Render() string
		CSV() string
	}, err error) error {
		return func(tbl interface {
			Render() string
			CSV() string
		}, err error) error {
			if err != nil {
				return err
			}
			fmt.Fprintln(out, tbl.Render())
			return writeCSV(csvName, tbl.CSV())
		}
	}

	sections := []struct {
		id, title string
		run       func() error
	}{
		{"1", "=== Table I: experimental setup (as realised by this model) ===",
			func() error { renderSetup(out, *phits); return nil }},
		{"2", "=== Table II: synthetic traffic, 4 VCs ===",
			func() error { return renderCSV("table2.csv")(sim.RunSyntheticTable(4, opt)) }},
		{"3", "=== Table III: synthetic traffic, 2 VCs ===",
			func() error { return renderCSV("table3.csv")(sim.RunSyntheticTable(2, opt)) }},
		{"4", "=== Table IV: SPLASH2/WCET benchmark mixes, 2 VCs ===",
			func() error {
				ropt := sim.DefaultRealOptions()
				ropt.Iterations = *iters
				ropt.Warmup, ropt.Measure, ropt.SeedBase = *warmup, *measure, *seed
				ropt.Phits = *phits
				ropt.Parallelism = *jobs
				ropt.Cache = store
				if recorder != nil {
					ropt.Record = recorder.Record
				}
				return renderCSV("table4.csv")(sim.RunRealTable(ropt))
			}},
		{"area", "=== Section III-D: area overhead (45 nm, ORION-style model) ===",
			func() error { return renderArea(out) }},
		{"vth", "=== Conclusion: net NBTI ΔVth saving vs non-gated baseline ===",
			func() error { return renderCSV("vth.csv")(sim.RunVthSaving(2, *years, opt)) }},
		{"coop", "=== Conclusion: cooperation (traffic information) ablation ===",
			func() error { return renderCSV("coop.csv")(sim.RunCooperation(2, opt)) }},
		{"perf", "=== Extension: NBTI/performance trade-off (16 cores, 4 VCs) ===",
			func() error {
				return renderCSV("perf.csv")(sim.RunPerfImpact(16, 4, *wakeup,
					[]float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3}, opt))
			}},
		{"power", "=== Extension: router energy and leakage saving (16 cores, 2 VCs) ===",
			func() error { return render(sim.RunEnergy(16, 2, 0.1, opt)) }},
		{"sensors", "=== Extension: sensor non-ideality robustness (16 cores, 4 VCs) ===",
			func() error { return render(sim.RunSensorStudy(16, 4, 0.1, opt)) }},
		{"corners", "=== Extension: lifetime across operating corners (16 cores, 2 VCs) ===",
			func() error {
				return render(sim.RunCorners(16, 2, 0.1, 0.050,
					[]float64{300, 325, 350, 375, 400}, []float64{1.0, 1.1, 1.2}, opt))
			}},
		{"dse", "=== Extension: design-space exploration (16 cores) ===",
			func() error {
				return renderCSV("dse.csv")(sim.RunDSE(16, 0.1, []int{2, 4, 8}, []int{2, 4, 8}, opt))
			}},
		{"rr", "=== Extension: rr-no-sensor rotation-period study (16 cores, 4 VCs) ===",
			func() error {
				return render(sim.RunRRPeriodStudy(16, 4, 0.1,
					[]uint64{1, 4, 16, 64, 256, 1024}, opt))
			}},
	}

	all := *table == "all"
	ran := false
	for _, s := range sections {
		if !all && *table != s.id {
			continue
		}
		ran = true
		phase.Store("table " + s.id)
		fmt.Fprintln(out, s.title)
		before := store.Stats()
		//nbtilint:allow wallclock display-only: wall time per table is printed for the operator and never feeds simulator state or table contents
		start := time.Now()
		if err := s.run(); err != nil {
			return err
		}
		if all {
			//nbtilint:allow wallclock display-only: elapsed seconds are a progress annotation on stdout, not part of any reproduced table
			line := fmt.Sprintf("[table %s: %.2fs", s.id, time.Since(start).Seconds())
			if store != nil {
				line += ", cache " + store.Stats().Sub(before).String()
			}
			fmt.Fprintf(out, "%s]\n\n", line)
		}
	}
	if !ran {
		return fmt.Errorf("unknown table %q", *table)
	}
	if recorder != nil {
		m := recorder.Manifest()
		if err := m.Save(*sweepOut); err != nil {
			return err
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "tables: recorded %d units into %s\n", len(m.Units), *sweepOut)
		}
	}
	if *verbose && store != nil {
		fmt.Fprintf(os.Stderr, "tables: cache: %s\n", store.Stats())
	}
	return nil
}

// ffRatioExtra annotates the -v progress line with the fraction of
// simulated cycles covered by event-horizon fast-forward. It stays
// empty until the first bulk jump, so fully-busy runs keep the line
// unchanged and runs without a registry cost nothing.
func ffRatioExtra(r *metrics.Registry) func() string {
	return func() string {
		ff := r.CounterValue(noc.MetricCyclesFastForwarded)
		cycles := r.CounterValue(noc.MetricCycles)
		if ff == 0 || cycles == 0 {
			return ""
		}
		return fmt.Sprintf("ff %.1f%%", 100*float64(ff)/float64(cycles))
	}
}

// startProgress prints p to stderr every 2 seconds until the returned
// stop function runs. The wall clock stays confined to package main —
// metrics.Progress only receives injected timestamps.
func startProgress(prog string, p *metrics.Progress) func() {
	//nbtilint:allow wallclock display-only: progress timestamps pace a stderr status line and never feed simulator state or outputs
	p.Start(time.Now().UnixNano())
	//nbtilint:allow wallclock display-only: the ticker paces the stderr progress line only
	tick := time.NewTicker(2 * time.Second)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				//nbtilint:allow wallclock display-only: rate-window timestamp for the stderr progress line only
				fmt.Fprintf(os.Stderr, "%s: %s\n", prog, p.Line(time.Now().UnixNano()))
			}
		}
	}()
	return func() {
		tick.Stop()
		close(done)
	}
}

// openCache builds the result store selected by the -cache/-cache-dir
// flags; mode off yields a nil store (the always-compute pass-through).
func openCache(prog, mode, dir string) (*cache.Store, error) {
	m, err := cache.ParseMode(mode)
	if err != nil {
		return nil, err
	}
	if m == cache.Off {
		return nil, nil
	}
	if dir == "" {
		dir = cache.DefaultDir()
	}
	st := cache.Open(dir, m)
	// The library never reads the wall clock (nbtilint's determinism
	// rules); the CLI injects it so hits can report time saved.
	//nbtilint:allow wallclock display-only: compute durations are recorded in cache entries so later hits can report wall-clock time saved; they never feed simulator state or outputs
	st.Clock = func() int64 { return time.Now().UnixNano() }
	if m == cache.ReadWrite {
		// Lease files give cross-process single-flight: a concurrent
		// nbtisweep campaign (or second tables run) over the same cache
		// directory never computes the same scenario twice.
		//nbtilint:allow wallclock display-only: lease waiters sleep between polls; cache contents and table bytes are independent of any timing
		st.Lease = cache.DefaultLeasePolicy(func(ns int64) { time.Sleep(time.Duration(ns)) })
	}
	st.Warnf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, prog+": cache: "+format+"\n", args...)
	}
	return st, nil
}

// renderSetup prints the realised counterpart of the paper's Table I.
func renderSetup(out io.Writer, phits int) {
	cfg, _ := sim.BaseConfig(16, 4)
	cfg.PhitsPerFlit = phits
	fmt.Fprintf(out, "%-18s %s\n", "Cores", "4/16 tiles, square 2D mesh (Tilera iMesh-style)")
	fmt.Fprintf(out, "%-18s %s\n", "Workloads", "uniform synthetic (0.1/0.2/0.3 flits/cycle/node);")
	fmt.Fprintf(out, "%-18s %s\n", "", "SPLASH2/WCET phase-model mixes (paper: GEM5 full-system)")
	fmt.Fprintf(out, "%-18s %d-stage wormhole VC router (BW/RC, VA/SA, ST)\n", "Router", 3)
	fmt.Fprintf(out, "%-18s %d/%d VCs per vnet, %d-flit buffers\n",
		"Virtual channels", 2, 4, cfg.BufferDepth)
	fmt.Fprintf(out, "%-18s %d-bit flits over %d-bit links (%d phits/flit), %d-cycle hops\n",
		"Links", cfg.FlitWidthBits, cfg.FlitWidthBits/phits, phits, cfg.LinkLatency)
	fmt.Fprintf(out, "%-18s XY dimension-order (YX, west-first available)\n", "Routing")
	fmt.Fprintf(out, "%-18s Vth0 = %.3f V @45 nm (%.3f V @32 nm), Vdd = %.1f V, %g GHz\n",
		"Technology", cfg.NBTI.Vth0, 0.160, cfg.NBTI.Vdd, 1e-9/cfg.NBTI.Tclk)
	fmt.Fprintf(out, "%-18s within-die N(%.3f, %.3f) per VC buffer\n",
		"Process variation", cfg.PV.MeanVth, cfg.PV.Sigma)
	fmt.Fprintln(out)
}

func renderArea(out io.Writer) error {
	rep, err := area.Estimate(area.Default45nm(), area.PaperSpec())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "router components (4 ports, 4 VCs, 4-flit buffers, 64-bit flits):\n")
	fmt.Fprintf(out, "  input buffers     %8.0f um^2\n", rep.BufferUm2)
	fmt.Fprintf(out, "  crossbar          %8.0f um^2\n", rep.CrossbarUm2)
	fmt.Fprintf(out, "  allocators        %8.0f um^2\n", rep.AllocatorUm2)
	fmt.Fprintf(out, "  outVCstate        %8.0f um^2\n", rep.OutVCStateUm2)
	fmt.Fprintf(out, "  router total      %8.0f um^2\n", rep.RouterUm2)
	fmt.Fprintf(out, "  data link (64b)   %8.0f um^2\n", rep.DataLinkUm2)
	fmt.Fprintf(out, "NBTI additions:\n")
	fmt.Fprintf(out, "  %d sensors        %8.0f um^2  -> %.2f%% of router (paper: 3.25%%)\n",
		rep.SensorCount, rep.SensorsUm2, rep.SensorPctOfRouter)
	fmt.Fprintf(out, "  Up_Down+Down_Up   %8.0f um^2  -> %.2f%% of a data link (paper: 3.8%%)\n",
		rep.CtrlLinkUm2, rep.CtrlPctOfDataLink)
	fmt.Fprintf(out, "  policy logic      %8.0f um^2  (paper: negligible)\n", rep.PolicyLogicUm2)
	fmt.Fprintf(out, "  total overhead    %.2f%% of baseline tile (paper: < 4%%)\n\n",
		rep.TotalPctOfBaseline)
	return nil
}
