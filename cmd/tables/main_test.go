package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runTables(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	// Tests default to -cache=off so they never touch the user cache
	// dir; a test passing its own -cache flag later wins.
	if err := run(append([]string{"-cache", "off"}, args...), &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestAreaTable(t *testing.T) {
	out := runTables(t, "-table", "area")
	for _, want := range []string{"sensors", "Up_Down+Down_Up", "total overhead", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("area output missing %q", want)
		}
	}
}

func TestQuickTable3(t *testing.T) {
	out := runTables(t, "-table", "3", "-quick")
	if !strings.Contains(out, "Table III") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "4core-inj0.10") || !strings.Contains(out, "16core-inj0.30") {
		t.Errorf("missing scenario rows:\n%s", out)
	}
	if !strings.Contains(out, "rr-no-sensor") || !strings.Contains(out, "sensor-wise") {
		t.Error("missing policy columns")
	}
}

func TestQuickTable4(t *testing.T) {
	out := runTables(t, "-table", "4", "-quick")
	for _, want := range []string{"4c-r0-E", "4c-r1-W", "16c-r15-W", "±"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table IV output missing %q:\n%s", want, out)
		}
	}
}

func TestQuickVth(t *testing.T) {
	out := runTables(t, "-table", "vth", "-quick")
	if !strings.Contains(out, "max saving") || !strings.Contains(out, "54.2%") {
		t.Errorf("vth output incomplete:\n%s", out)
	}
}

func TestQuickCoop(t *testing.T) {
	out := runTables(t, "-table", "coop", "-quick")
	if !strings.Contains(out, "max cooperative reduction") {
		t.Errorf("coop output incomplete:\n%s", out)
	}
}

func TestQuickPerfAndPower(t *testing.T) {
	out := runTables(t, "-table", "perf", "-quick")
	if !strings.Contains(out, "trade-off") {
		t.Errorf("perf output incomplete:\n%s", out)
	}
	out = runTables(t, "-table", "power", "-quick")
	if !strings.Contains(out, "leak saved") {
		t.Errorf("power output incomplete:\n%s", out)
	}
}

func TestUnknownTableRejected(t *testing.T) {
	if err := run([]string{"-table", "99"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestTable1Setup(t *testing.T) {
	out := runTables(t, "-table", "1")
	for _, want := range []string{"2D mesh", "3-stage", "64-bit flits", "0.180 V", "N(0.180, 0.005)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestCSVFlag(t *testing.T) {
	dir := t.TempDir()
	runTables(t, "-table", "3", "-quick", "-csv", dir)
	data, err := os.ReadFile(filepath.Join(dir, "table3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "scenario,cores,rate,policy") {
		t.Errorf("CSV content wrong:\n%s", data)
	}
}
