package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMetricsOutSnapshot drives a real table run with -metrics-out and
// checks the dumped snapshot carries the engine series the observability
// layer promises: gating transitions per policy and cache hit/miss
// counters (acceptance criteria of the monitor feature).
func TestMetricsOutSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the Table II scenarios (tiny windows)")
	}
	dir := t.TempDir()
	outFile := filepath.Join(dir, "metrics.json")
	// Windows far below -quick keep this fast even under -race; every
	// asserted series ticks within the first few hundred cycles.
	runTables(t, "-table", "2", "-warmup", "200", "-measure", "2000",
		"-cache", "rw", "-cache-dir", filepath.Join(dir, "cache"),
		"-metrics-out", outFile)

	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Families []struct {
			Name    string `json:"name"`
			Metrics []struct {
				LabelValues []string `json:"label_values"`
				Counter     *uint64  `json:"counter"`
			} `json:"metrics"`
		} `json:"families"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("parsing -metrics-out snapshot: %v", err)
	}
	total := func(name string) uint64 {
		var n uint64
		for _, f := range snap.Families {
			if f.Name != name {
				continue
			}
			for _, m := range f.Metrics {
				if m.Counter != nil {
					n += *m.Counter
				}
			}
		}
		return n
	}
	for _, series := range []string{
		"noc_cycles_total",
		"noc_gating_transitions_total",
		"noc_flits_routed_total",
		"nbti_stress_spans_total",
		"sim_jobs_done_total",
	} {
		if total(series) == 0 {
			t.Errorf("snapshot series %s is zero after a table run", series)
		}
	}
	// A cold read-write cache run computes everything: misses, no hits.
	if total("cache_misses_total") == 0 {
		t.Error("cold cache run recorded no cache misses")
	}
}

// TestMonitorFlagServes starts a table run with -monitor and scrapes
// /metrics while it executes, checking the Prometheus text carries the
// gating-transition and cache series.
func TestMonitorFlagServes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the Table II scenarios (tiny windows)")
	}
	// Reserve a port, free it, and hand it to -monitor. The window
	// between Close and the monitor's bind is small enough in practice.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	dir := t.TempDir()
	done := make(chan error, 1)
	go func() {
		var buf bytes.Buffer
		done <- run([]string{"-table", "2", "-warmup", "200", "-measure", "2000",
			"-cache", "rw", "-cache-dir", dir,
			"-monitor", addr}, &buf)
	}()

	var body string
	// Generous: the run takes well under a second normally, but the
	// race detector slows simulation by an order of magnitude.
	deadline := time.After(120 * time.Second)
poll:
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if body == "" {
				t.Fatal("run finished before the monitor answered a scrape")
			}
			break poll
		case <-deadline:
			t.Fatal("table run did not finish in 120s")
		default:
		}
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && len(b) > 0 {
				body = string(b)
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, want := range []string{
		"# TYPE noc_gating_transitions_total counter",
		"# TYPE cache_misses_total counter",
		"# TYPE cache_hits_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}
