package main

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nbtinoc/internal/sim"
)

// goldenPins ties each sim.EngineVersion to the sha256 of every golden
// fixture produced under it. The result cache keys every entry on
// EngineVersion, so stale entries are only impossible if the version
// moves whenever observable output moves — which is exactly what the
// fixtures witness. On an intentional behaviour change: regenerate the
// fixtures (see golden_test.go), bump sim.EngineVersion, and add the
// new version's pins here.
var goldenPins = map[string]map[string]string{
	"nbtinoc-engine-1": {
		"golden_table2_quick.txt":        "a9cf96945fe9f6637f17c63774aea200b91d2342405e526ad34b066edd5e17ca",
		"golden_coop_quick.txt":          "40d579cb705fc5d647d4515aec6d0a9609c62634e3823643dafd1630f0e7ad5c",
		"golden_table2_mesh16_quick.txt": "e662872c32ac7b05110e8b4d00f5f7138b79a61ebc50797df2d08246271ccd6b",
		"golden_all_quick.txt":           "8850fc9d44f046973c97b67a78862cab4772269d95a66251adcb84f9c11deaf7",
	},
	// engine-2: per-node rng streams with geometric skip-sampling replace
	// the single per-cycle Bernoulli sweep (statistically the same
	// process, different draw sequence), enabling event-horizon
	// fast-forward.
	"nbtinoc-engine-2": {
		"golden_table2_quick.txt":        "e6dc1692e826f459f432f74148ffd1ef12361268913ae6958b6cf417e9589ee1",
		"golden_coop_quick.txt":          "c60e9ff10eeb08b0ba573e18531446d202b217766cfcb373737ad1b452bcdcad",
		"golden_table2_mesh16_quick.txt": "af3b25c8f327cd4447515405914ae7a49f0b8a03b8678dd519934f97cd7e3a72",
		"golden_all_quick.txt":           "1edea050035abd0ebb4fb50427d38653a3f4f3f622c2ff85efd81de699dee447",
	},
}

// TestEngineVersionPinsGoldens fails in both directions: a fixture
// changed without an EngineVersion bump (cached results would go
// silently stale), or the version was bumped without refreshing the
// pins (the coupling would rot).
func TestEngineVersionPinsGoldens(t *testing.T) {
	pins, ok := goldenPins[sim.EngineVersion]
	if !ok {
		t.Fatalf("sim.EngineVersion %q has no golden pins — after a bump, regenerate the fixtures and record their hashes in goldenPins", sim.EngineVersion)
	}
	fixtures, err := filepath.Glob(filepath.Join("testdata", "golden_*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) != len(pins) {
		t.Errorf("testdata has %d golden fixtures, pins cover %d — keep goldenPins exhaustive", len(fixtures), len(pins))
	}
	for _, path := range fixtures {
		name := filepath.Base(path)
		want, ok := pins[name]
		if !ok {
			t.Errorf("fixture %s has no pin under EngineVersion %q", name, sim.EngineVersion)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != want {
			t.Errorf("fixture %s hash %s does not match the pin for EngineVersion %q (%s)\n"+
				"an output change must bump sim.EngineVersion (invalidating the result cache) and refresh this pin",
				name, got, sim.EngineVersion, want)
		}
	}
}

// TestEngineVersionFlag: CI uses `-engine-version` to key its persisted
// cache directory, so the flag must print exactly the version string.
func TestEngineVersionFlag(t *testing.T) {
	out := runTables(t, "-engine-version")
	if strings.TrimSpace(out) != sim.EngineVersion {
		t.Errorf("-engine-version printed %q, want %q", out, sim.EngineVersion)
	}
}

// TestGoldenWithCache re-runs a golden table twice against one cache
// directory — cold (all misses) then warm (all hits) — and requires
// both byte-identical to the pinned fixture. This is the end-to-end
// exactness claim: memoization changes timing, never bytes.
func TestGoldenWithCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full quick table once to fill the cache")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_coop_quick.txt"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	args := []string{"-cache", "rw", "-cache-dir", dir, "-table", "coop", "-quick"}

	cold := runTables(t, args...)
	if cold != string(want) {
		t.Errorf("cold cached run diverged from fixture:\n%s", firstDiff(string(want), cold))
	}
	warm := runTables(t, args...)
	if warm != string(want) {
		t.Errorf("warm cached run diverged from fixture:\n%s", firstDiff(string(want), warm))
	}
}
