package main

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenOutputs pins the exact text of the deterministic tables at
// seed 1. The fixtures were captured before the activity-gated engine
// rewrite, so a passing run proves the rewrite byte-identical to the
// original full-sweep engine — the same guarantee
// TestParallelMatchesSequential gives across -j values, extended across
// engine versions. Regenerate a fixture only for an intentional output
// change:
//
//	go run ./cmd/tables -table 2 -quick > cmd/tables/testdata/golden_table2_quick.txt
//	go run ./cmd/tables -table coop -quick > cmd/tables/testdata/golden_coop_quick.txt
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("quick simulation windows still simulate ~22k cycles per scenario")
	}
	cases := []struct {
		name    string
		fixture string
		args    []string
	}{
		{"table2", "golden_table2_quick.txt", []string{"-table", "2", "-quick"}},
		{"coop", "golden_coop_quick.txt", []string{"-table", "coop", "-quick"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.fixture))
			if err != nil {
				t.Fatal(err)
			}
			got := runTables(t, tc.args...)
			if got != string(want) {
				t.Errorf("output diverged from %s (want sha256 %s, got %s)\n%s",
					tc.fixture, shortHash(want), shortHash([]byte(got)),
					firstDiff(string(want), got))
			}
		})
	}
}

func shortHash(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:8])
}

// firstDiff renders the first divergent line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := splitLines(want), splitLines(got)
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return "first diff at line " + itoa(i+1) + ":\n  want: " + w + "\n  got:  " + g
		}
	}
	return "outputs differ only in length"
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
