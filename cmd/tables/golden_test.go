package main

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenOutputs pins the exact text of the deterministic tables at
// seed 1. The fixtures were captured before the activity-gated engine
// rewrite, so a passing run proves the rewrite byte-identical to the
// original full-sweep engine — the same guarantee
// TestParallelMatchesSequential gives across -j values, extended across
// engine versions. Regenerate a fixture only for an intentional output
// change:
//
//	go run ./cmd/tables -table 2 -quick > cmd/tables/testdata/golden_table2_quick.txt
//	go run ./cmd/tables -table coop -quick > cmd/tables/testdata/golden_coop_quick.txt
//	go run ./cmd/tables -table 2 -mesh 16x16 -quick > cmd/tables/testdata/golden_table2_mesh16_quick.txt
//	go run ./cmd/tables -table all -quick | grep -v '^\[table' > cmd/tables/testdata/golden_all_quick.txt
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("quick simulation windows still simulate ~22k cycles per scenario")
	}
	cases := []struct {
		name    string
		fixture string
		args    []string
	}{
		{"table2", "golden_table2_quick.txt", []string{"-table", "2", "-quick"}},
		{"coop", "golden_coop_quick.txt", []string{"-table", "coop", "-quick"}},
		// The flat-arena engine's big-mesh scaling point: 256 routers,
		// quick windows. Slow (~1 min on one core), but it is the only
		// pin proving large meshes stay deterministic.
		{"table2-mesh16", "golden_table2_mesh16_quick.txt",
			[]string{"-table", "2", "-mesh", "16x16", "-quick"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.fixture))
			if err != nil {
				t.Fatal(err)
			}
			got := runTables(t, tc.args...)
			if got != string(want) {
				t.Errorf("output diverged from %s (want sha256 %s, got %s)\n%s",
					tc.fixture, shortHash(want), shortHash([]byte(got)),
					firstDiff(string(want), got))
			}
		})
	}
}

// TestAllTablesGolden pins every table of -table all at -quick -seed 1
// against the fixture captured on the pre-flat-arena engine, with the
// wall-clock "[table ...]" annotations stripped — the whole-output
// determinism guarantee across engine rewrites, in one run.
func TestAllTablesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every table at quick windows (~20s on one core)")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_all_quick.txt"))
	if err != nil {
		t.Fatal(err)
	}
	got := stripTimings(runTables(t, "-table", "all", "-quick"))
	if got != string(want) {
		t.Errorf("-table all diverged from golden_all_quick.txt (want sha256 %s, got %s)\n%s",
			shortHash(want), shortHash([]byte(got)), firstDiff(string(want), got))
	}
}

// stripTimings drops the per-table wall-clock lines ("[table 2: ...]"),
// the only nondeterministic part of -table all output.
func stripTimings(s string) string {
	var b []byte
	for _, line := range splitLines(s) {
		if len(line) > 6 && line[:6] == "[table" {
			continue
		}
		b = append(b, line...)
		b = append(b, '\n')
	}
	return string(b)
}

func shortHash(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:8])
}

// firstDiff renders the first divergent line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := splitLines(want), splitLines(got)
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return "first diff at line " + itoa(i+1) + ":\n  want: " + w + "\n  got:  " + g
		}
	}
	return "outputs differ only in length"
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
