// Command tracegen generates, inspects and converts workload trace
// files in the nbtinoc text format ("cycle src dst vnet len" lines).
//
// Examples:
//
//	tracegen -out fft.trace -cores 16 -workload app -cycles 100000 -seed 5
//	tracegen -out uni.trace -cores 4 -workload uniform -rate 0.2 -cycles 50000
//	tracegen -inspect uni.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/sim"
	"nbtinoc/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		outPath  = fs.String("out", "", "output trace file (generation mode)")
		inspect  = fs.String("inspect", "", "trace file to summarise (inspection mode)")
		cores    = fs.Int("cores", 16, "number of cores (square mesh)")
		workload = fs.String("workload", "uniform", "workload: synthetic pattern name or 'app'")
		rate     = fs.Float64("rate", 0.2, "injection rate for synthetic workloads")
		pktLen   = fs.Int("pktlen", 4, "packet length for synthetic workloads")
		cycles   = fs.Uint64("cycles", 100_000, "cycles to generate")
		seed     = fs.Uint64("seed", 1, "generator seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inspect != "" {
		return inspectTrace(*inspect, out)
	}
	if *outPath == "" {
		return fmt.Errorf("need -out FILE or -inspect FILE")
	}

	side, err := sim.MeshSide(*cores)
	if err != nil {
		return err
	}
	var gen traffic.Generator
	if *workload == "app" {
		gen, err = traffic.NewRandomAppMix(side, side, 0, *seed)
	} else {
		var pat traffic.Pattern
		pat, err = traffic.ParsePattern(*workload)
		if err == nil {
			gen, err = traffic.NewSynthetic(traffic.SyntheticConfig{
				Pattern: pat, Width: side, Height: side,
				Rate: *rate, PacketLen: *pktLen, Seed: *seed,
				HotspotNode: 0, HotspotFraction: 0.3,
			})
		}
	}
	if err != nil {
		return err
	}

	var events []traffic.Event
	for c := uint64(0); c < *cycles; c++ {
		gen.Tick(c, func(src, dst noc.NodeID, vnet, length int) {
			events = append(events, traffic.Event{
				Cycle: c, Src: src, Dst: dst, VNet: vnet, Len: length,
			})
		})
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := traffic.WriteTrace(f, events); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d events over %d cycles to %s (workload %s)\n",
		len(events), *cycles, *outPath, gen.Name())
	return nil
}

func inspectTrace(path string, out io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := traffic.ReadTrace(f)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		fmt.Fprintln(out, "empty trace")
		return nil
	}
	var flits int
	srcs := map[noc.NodeID]int{}
	dsts := map[noc.NodeID]int{}
	maxNode := noc.NodeID(0)
	for _, e := range events {
		flits += e.Len
		srcs[e.Src]++
		dsts[e.Dst]++
		if e.Src > maxNode {
			maxNode = e.Src
		}
		if e.Dst > maxNode {
			maxNode = e.Dst
		}
	}
	span := events[len(events)-1].Cycle - events[0].Cycle + 1
	fmt.Fprintf(out, "events      %d packets, %d flits\n", len(events), flits)
	fmt.Fprintf(out, "cycles      %d .. %d (span %d)\n",
		events[0].Cycle, events[len(events)-1].Cycle, span)
	fmt.Fprintf(out, "nodes       up to id %d (%d sources, %d destinations)\n",
		maxNode, len(srcs), len(dsts))
	fmt.Fprintf(out, "load        %.4f flits/cycle aggregate\n", float64(flits)/float64(span))
	hot, hotN := noc.NodeID(0), 0
	for n, c := range dsts {
		if c > hotN || (c == hotN && n < hot) {
			hot, hotN = n, c
		}
	}
	fmt.Fprintf(out, "hottest dst node %d (%d packets, %.1f%%)\n",
		hot, hotN, 100*float64(hotN)/float64(len(events)))
	return nil
}
