package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nbtinoc/internal/traffic"
)

func TestGenerateAndInspect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "u.trace")
	var buf bytes.Buffer
	err := run([]string{"-out", path, "-cores", "4", "-workload", "uniform",
		"-rate", "0.2", "-cycles", "5000", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote") {
		t.Errorf("no confirmation: %s", buf.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	events, err := traffic.ReadTrace(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace generated")
	}
	buf.Reset()
	if err := run([]string{"-inspect", path}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"events", "cycles", "load", "hottest"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestGenerateAppTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.trace")
	var buf bytes.Buffer
	err := run([]string{"-out", path, "-cores", "16", "-workload", "app",
		"-cycles", "10000", "-seed", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "app-mix") {
		t.Errorf("app workload not named: %s", buf.String())
	}
}

func TestInspectEmptyTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "e.trace")
	if err := os.WriteFile(path, []byte("# empty\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-inspect", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty trace") {
		t.Errorf("empty trace not reported: %s", buf.String())
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                            // neither -out nor -inspect
		{"-out", "/x", "-cores", "5"}, // non-square mesh
		{"-out", "/x/y/z.trace"},      // unwritable path
		{"-out", "/tmp/t2.trace", "-workload", "spiral"},
		{"-inspect", "/nonexistent.trace"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
