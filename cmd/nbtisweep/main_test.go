package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nbtinoc/internal/sweep"
)

// TestMain doubles as the worker entry point: the coordinator spawns
// os.Executable() — in tests, this test binary — with "worker" argv, so
// the dispatch here mirrors main() and the e2e tests below exercise the
// real multi-process topology.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		if err := runWorker(os.Args[2:]); err != nil {
			os.Stderr.WriteString("worker: " + err.Error() + "\n")
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const testGridJSON = `{
  "name": "e2e",
  "base": {
    "name": "e2e",
    "cores": 4,
    "vcs": 1,
    "policy": "baseline",
    "workload": "uniform",
    "rate": 0.1,
    "warmup": 200,
    "measure": 2000,
    "seed": 1,
    "pv_seed": 1
  },
  "axes": {
    "policies": ["baseline", "sensor-wise"],
    "rates": [0.1, 0.2]
  },
  "probes": ["0:E"]
}
`

// writeGrid drops the shared test grid into dir and returns its path.
func writeGrid(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(path, []byte(testGridJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// sweepRun invokes the CLI's run() and returns the report bytes.
func sweepRun(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, &out)
	return out.String(), err
}

func TestSweepByteIdenticalAcrossTopologies(t *testing.T) {
	if testing.Short() {
		t.Skip("execs worker processes")
	}
	dir := t.TempDir()
	grid := writeGrid(t, dir)

	// Reference: single process, sequential pool.
	refCache := filepath.Join(dir, "cache-ref")
	ref, err := sweepRun(t, "-grid", grid, "-cache-dir", refCache, "-procs", "1", "-j", "1")
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if !strings.HasPrefix(ref, "# nbtinoc sweep e2e ") {
		t.Fatalf("report header missing: %q", ref[:min(len(ref), 60)])
	}

	for _, tc := range []struct {
		procs    int
		strategy string
	}{
		{2, "range"},
		{2, "steal"},
		{3, "steal"},
	} {
		cacheDir := filepath.Join(dir, "cache-"+tc.strategy+"-"+string(rune('0'+tc.procs)))
		manifest := filepath.Join(dir, "camp-"+tc.strategy+"-"+string(rune('0'+tc.procs))+".json")
		got, err := sweepRun(t, "-grid", grid, "-manifest", manifest,
			"-cache-dir", cacheDir, "-procs", string(rune('0'+tc.procs)), "-strategy", tc.strategy)
		if err != nil {
			t.Fatalf("procs=%d strategy=%s: %v", tc.procs, tc.strategy, err)
		}
		if got != ref {
			t.Errorf("procs=%d strategy=%s: report differs from single-process reference\nref:\n%s\ngot:\n%s",
				tc.procs, tc.strategy, ref, got)
		}
	}
}

func TestSweepKillThenResumeMatchesUninterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("execs worker processes")
	}
	dir := t.TempDir()
	grid := writeGrid(t, dir)

	refCache := filepath.Join(dir, "cache-ref")
	ref, err := sweepRun(t, "-grid", grid, "-cache-dir", refCache, "-procs", "1", "-j", "1")
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	cacheDir := filepath.Join(dir, "cache-killed")
	manifest := filepath.Join(dir, "camp-killed.json")
	// Range sharding: worker 0's share stays incomplete when it dies, so
	// the first round must fail and leave pending units behind.
	out, err := sweepRun(t, "-grid", grid, "-manifest", manifest, "-cache-dir", cacheDir,
		"-procs", "2", "-strategy", "range", "-kill-worker", "0", "-kill-after", "1")
	if err == nil {
		t.Fatal("killed campaign reported success")
	}
	if out != "" {
		t.Fatalf("killed campaign emitted report bytes: %q", out)
	}
	m, err := sweep.LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	pending, done, _ := m.Counts()
	if pending == 0 || done == 0 {
		t.Fatalf("after kill want partial progress, got %d pending %d done", pending, done)
	}

	// Resume from the manifest alone — no -grid needed.
	got, err := sweepRun(t, "-manifest", manifest, "-cache-dir", cacheDir, "-procs", "1")
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got != ref {
		t.Errorf("resumed report differs from uninterrupted reference\nref:\n%s\ngot:\n%s", ref, got)
	}
}

func TestSweepStatusAndFlagErrors(t *testing.T) {
	dir := t.TempDir()
	grid := writeGrid(t, dir)
	manifest := filepath.Join(dir, "camp.json")

	// No grid, no manifest.
	if _, err := sweepRun(t); err == nil {
		t.Error("want error without -grid or -manifest")
	}
	// Manifest path that does not exist and no grid to create it.
	if _, err := sweepRun(t, "-manifest", manifest); err == nil {
		t.Error("want error for missing manifest without -grid")
	}
	// Unknown strategy.
	if _, err := sweepRun(t, "-grid", grid, "-strategy", "round-robin"); err == nil {
		t.Error("want error for unknown strategy")
	}
	// -status needs -manifest.
	if _, err := sweepRun(t, "-status"); err == nil {
		t.Error("want error for -status without -manifest")
	}

	// A real campaign, then -status over its manifest.
	cacheDir := filepath.Join(dir, "cache")
	if _, err := sweepRun(t, "-grid", grid, "-manifest", manifest, "-cache-dir", cacheDir, "-procs", "1"); err != nil {
		t.Fatal(err)
	}
	out, err := sweepRun(t, "-manifest", manifest, "-status")
	if err != nil {
		t.Fatal(err)
	}
	want := "campaign e2e: 4 units: 4 done, 0 failed, 0 pending\n"
	if out != want {
		t.Errorf("status = %q, want %q", out, want)
	}

	// Resuming with a drifted grid is refused.
	drifted := strings.Replace(testGridJSON, "0.2", "0.3", 1)
	driftPath := filepath.Join(dir, "drift.json")
	if err := os.WriteFile(driftPath, []byte(drifted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sweepRun(t, "-grid", driftPath, "-manifest", manifest, "-cache-dir", cacheDir); err == nil {
		t.Error("want error resuming with a different grid")
	} else if !strings.Contains(err.Error(), "does not match manifest") {
		t.Errorf("drift error = %v", err)
	}
}

func TestSweepEngineVersionFlag(t *testing.T) {
	out, err := sweepRun(t, "-engine-version")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "nbtinoc-engine-") {
		t.Errorf("engine version = %q", out)
	}
}
