// Command nbtisweep runs sharded scenario campaigns: it expands a
// declarative grid (JSON) into content-addressed work units, shards
// them across worker processes that share one result cache, and merges
// the finished campaign into a deterministic CSV report — byte-identical
// at any (processes × workers) topology.
//
//	nbtisweep -grid grid.json -manifest camp.json -procs 4 -j 2
//
// Workers coordinate through the cache directory itself: lease files
// give cross-process single-flight (no unit is ever computed twice
// concurrently), a killed worker's claims expire by heartbeat, and the
// manifest checkpoints per-unit state so a killed campaign resumes
// exactly where it stopped:
//
//	nbtisweep -manifest camp.json            # resume
//	nbtisweep -manifest camp.json -status    # inspect progress
//
// -strategy picks the sharding discipline: "range" gives each worker a
// disjoint contiguous share (no lease contention; a dead worker's share
// waits for a resume), "steal" gives every worker the full pending list
// at rotated offsets (leases deduplicate; dead workers' units are taken
// over in-run). -o writes the merged report to a file instead of
// stdout; stderr carries progress and the aggregated cache statistics
// of all workers, never report bytes.
//
// The "worker" subcommand is the re-exec entry point the coordinator
// spawns; it is not meant to be invoked by hand. -kill-worker/-kill-after
// make the chosen worker exit mid-batch — a crash-injection hook for
// the resume tests and CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/metrics"
	"nbtinoc/internal/noc"
	"nbtinoc/internal/prof"
	"nbtinoc/internal/sim"
	"nbtinoc/internal/sweep"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "worker" {
		if err := runWorker(args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "nbtisweep worker:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(args, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nbtisweep:", err)
		os.Exit(1)
	}
}

// realEnv is the injected wall-clock/lease wiring shared by the
// coordinator and worker roles; the libraries themselves never touch
// time (nbtilint wallclock rule).
func realEnv(ttl time.Duration) (func() int64, *cache.LeasePolicy) {
	//nbtilint:allow wallclock display-only: timestamps feed lease heartbeats and cache time-saved accounting, never simulator state or report bytes
	clock := func() int64 { return time.Now().UnixNano() }
	//nbtilint:allow wallclock display-only: sleeping paces lease waiters; the merged report bytes are independent of any timing
	lease := cache.DefaultLeasePolicy(func(ns int64) { time.Sleep(time.Duration(ns)) })
	if ttl > 0 {
		lease.TTLNS = int64(ttl)
		if hb := lease.TTLNS / 5; hb < lease.HeartbeatNS {
			lease.HeartbeatNS = hb
		}
	}
	return clock, lease
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("nbtisweep", flag.ContinueOnError)
	var profFlags prof.Flags
	profFlags.Register(fs, "trace")
	var metFlags metrics.CLIFlags
	metFlags.Register(fs)
	var (
		gridPath     = fs.String("grid", "", "grid JSON describing the campaign (new campaigns)")
		manifestPath = fs.String("manifest", "", "campaign manifest: created with -grid, resumed without")
		procs        = fs.Int("procs", 1, "worker processes (1 runs in-process)")
		jobs         = fs.Int("j", 0, "per-process pool width: 0 = one per core, 1 = sequential")
		strategyStr  = fs.String("strategy", "range", "shard strategy: range or steal")
		cacheDir     = fs.String("cache-dir", "", "shared result cache directory (default: user cache dir)")
		outPath      = fs.String("o", "", "write the merged report to this file (default stdout)")
		status       = fs.Bool("status", false, "print the manifest's unit states and exit")
		leaseTTL     = fs.Duration("lease-ttl", 0, "override the lease staleness horizon (default 10s)")
		killWorker   = fs.Int("kill-worker", -1, "crash injection: which spawned worker to kill (-1 = none)")
		killAfter    = fs.Int("kill-after", 1, "crash injection: kill after this many completed units")
		verbose      = fs.Bool("v", false, "print progress and campaign cache statistics to stderr")
		engineVer    = fs.Bool("engine-version", false, "print the engine fingerprint baked into cache keys, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *engineVer {
		fmt.Fprintln(out, sim.EngineVersion)
		return nil
	}
	if *status {
		if *manifestPath == "" {
			return fmt.Errorf("-status needs -manifest")
		}
		m, err := sweep.LoadManifest(*manifestPath)
		if err != nil {
			return err
		}
		pending, done, failed := m.Counts()
		fmt.Fprintf(out, "campaign %s: %d units: %d done, %d failed, %d pending\n",
			m.Name, len(m.Units), done, failed, pending)
		for _, u := range m.Units {
			if u.State == sweep.UnitFailed {
				fmt.Fprintf(out, "  failed %d %s: %s\n", u.Index, u.Label, u.Err)
			}
		}
		return nil
	}
	strategy, err := sweep.ParseStrategy(*strategyStr)
	if err != nil {
		return err
	}
	stopProf, err := profFlags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	finishMet, err := metFlags.Setup(*verbose, prof.HTTPHandler(), func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "nbtisweep: "+format+"\n", args...)
	})
	if err != nil {
		return err
	}
	defer func() {
		if merr := finishMet(); merr != nil && err == nil {
			err = merr
		}
	}()

	manifest, units, err := resolveCampaign(*gridPath, *manifestPath)
	if err != nil {
		return err
	}
	dir := *cacheDir
	if dir == "" {
		dir = cache.DefaultDir()
	}
	clock, lease := realEnv(*leaseTTL)
	c := &sweep.Coordinator{
		Manifest:     manifest,
		Units:        units,
		ManifestPath: *manifestPath,
		CacheDir:     dir,
		Procs:        *procs,
		Workers:      *jobs,
		Strategy:     strategy,
		Clock:        clock,
		Lease:        lease,
	}
	if *verbose {
		c.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "nbtisweep: "+format+"\n", args...)
		}
		if r := metrics.Default(); r != nil {
			stop := startProgress("nbtisweep", &metrics.Progress{
				R:          r,
				Cycles:     noc.MetricCycles,
				JobsDone:   sweep.MetricUnitsDone,
				JobsTotal:  sweep.MetricUnitsTotal,
				SampleHeap: true,
				Extra: func() string {
					var parts []string
					if ff := r.CounterValue(noc.MetricCyclesFastForwarded); ff > 0 {
						if cycles := r.CounterValue(noc.MetricCycles); cycles > 0 {
							parts = append(parts, fmt.Sprintf("ff %.1f%%", 100*float64(ff)/float64(cycles)))
						}
					}
					w := r.CounterValue(cache.MetricLeaseWaited)
					s := r.CounterValue(cache.MetricLeaseTakeovers)
					if w > 0 || s > 0 {
						parts = append(parts, fmt.Sprintf("lease wait %d steal %d", w, s))
					}
					return strings.Join(parts, " ")
				},
			})
			defer stop()
		}
	}
	if *procs > 1 {
		c.Spawn = execWorkerSpawn(*leaseTTL, *killWorker, *killAfter, *verbose)
	}

	var w io.Writer = out
	if *outPath != "" {
		f, cerr := os.Create(*outPath)
		if cerr != nil {
			return cerr
		}
		defer func() {
			if ferr := f.Close(); ferr != nil && err == nil {
				err = ferr
			}
		}()
		w = f
	}
	_, err = c.Run(w)
	return err
}

// resolveCampaign builds the (manifest, units) pair from the flag
// combination: fresh from a grid, resumed from a manifest, or — both
// given and the manifest file already existing — resumed after
// checking the grid hasn't drifted from the recorded campaign.
func resolveCampaign(gridPath, manifestPath string) (*sweep.Manifest, []sweep.Unit, error) {
	if gridPath == "" && manifestPath == "" {
		return nil, nil, fmt.Errorf("need -grid (new campaign) or -manifest (resume)")
	}
	if manifestPath != "" {
		if _, err := os.Stat(manifestPath); err == nil {
			m, err := sweep.LoadManifest(manifestPath)
			if err != nil {
				return nil, nil, err
			}
			if gridPath != "" {
				g, err := sweep.LoadGridFile(gridPath)
				if err != nil {
					return nil, nil, err
				}
				key, err := g.Key()
				if err != nil {
					return nil, nil, err
				}
				if key != m.GridKey {
					return nil, nil, fmt.Errorf("grid %s does not match manifest %s (campaign was started from a different grid)",
						gridPath, manifestPath)
				}
			}
			units, err := m.Resolve()
			if err != nil {
				return nil, nil, err
			}
			return m, units, nil
		}
	}
	if gridPath == "" {
		return nil, nil, fmt.Errorf("manifest %s does not exist and no -grid was given to create it", manifestPath)
	}
	g, err := sweep.LoadGridFile(gridPath)
	if err != nil {
		return nil, nil, err
	}
	m, units, err := sweep.NewManifest(g)
	if err != nil {
		return nil, nil, err
	}
	return m, units, nil
}

// execWorkerSpawn re-execs this binary's "worker" subcommand per
// shard — real OS processes, each with its own cache Store, flight
// map and lease identity.
func execWorkerSpawn(ttl time.Duration, killWorker, killAfter int, verbose bool) func(int, string, string) error {
	return func(w int, assignPath, reportPath string) error {
		exe, err := os.Executable()
		if err != nil {
			return err
		}
		args := []string{"worker", "-assign", assignPath, "-report", reportPath}
		if ttl > 0 {
			args = append(args, "-lease-ttl", ttl.String())
		}
		if w == killWorker {
			args = append(args, "-kill-after", strconv.Itoa(killAfter))
		}
		if verbose {
			args = append(args, "-v")
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		return cmd.Run()
	}
}

// runWorker is the spawned-process entry point: execute one assignment
// file against the shared cache and write the report file.
func runWorker(args []string) error {
	fs := flag.NewFlagSet("nbtisweep worker", flag.ContinueOnError)
	var (
		assignPath = fs.String("assign", "", "assignment file from the coordinator")
		reportPath = fs.String("report", "", "where to write the worker report")
		leaseTTL   = fs.Duration("lease-ttl", 0, "override the lease staleness horizon")
		killAfter  = fs.Int("kill-after", 0, "crash injection: exit(3) after this many completed units")
		verbose    = fs.Bool("v", false, "log per-batch completion to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *assignPath == "" || *reportPath == "" {
		return fmt.Errorf("worker needs -assign and -report")
	}
	clock, lease := realEnv(*leaseTTL)
	env := sweep.WorkerEnv{Clock: clock, Lease: lease}
	if *killAfter > 0 {
		n := *killAfter
		env.AfterUnit = func(completed int) {
			if completed >= n {
				// Die like a crash: no report, no lease release — the
				// abandoned claims must expire by heartbeat.
				os.Exit(3)
			}
		}
	}
	if *verbose {
		var done atomic.Int64
		prev := env.AfterUnit
		env.AfterUnit = func(completed int) {
			fmt.Fprintf(os.Stderr, "nbtisweep worker %d: %d units done\n", os.Getpid(), done.Add(1))
			if prev != nil {
				prev(completed)
			}
		}
	}
	return sweep.ExecuteAssignment(*assignPath, *reportPath, env)
}

// startProgress prints p to stderr every 2 seconds until the returned
// stop function runs; wall time stays confined to package main.
func startProgress(prog string, p *metrics.Progress) func() {
	//nbtilint:allow wallclock display-only: progress timestamps pace a stderr status line and never feed simulator state or outputs
	p.Start(time.Now().UnixNano())
	//nbtilint:allow wallclock display-only: the ticker paces the stderr progress line only
	tick := time.NewTicker(2 * time.Second)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				//nbtilint:allow wallclock display-only: rate-window timestamp for the stderr progress line only
				fmt.Fprintf(os.Stderr, "%s: %s\n", prog, p.Line(time.Now().UnixNano()))
			}
		}
	}()
	return func() {
		tick.Stop()
		close(done)
	}
}
