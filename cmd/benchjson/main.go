// Command benchjson converts `go test -bench` text output into the
// machine-readable perf-trajectory file BENCH_engine.json, so every PR
// can record before/after engine numbers in a stable format.
//
//	go test -bench=. -benchmem -run '^$' . | benchjson -label after -o BENCH_engine.json -append
//
// -append keeps the runs already in the output file (e.g. the "before"
// run recorded prior to an optimisation) and adds the new one. A run
// whose label already exists is replaced in place instead of
// duplicated, so labels identify data points: the Makefile labels each
// run with the short git commit hash, and re-running `make bench` on
// the same commit refreshes that commit's numbers rather than
// appending an indistinguishable copy.
// -baseline compares the parsed run against the named benchmarks of a
// pinned baseline file and exits non-zero when any regress: allocs/op
// beyond -alloc-tol percent (the guard against per-cycle allocation
// creep) or sec/op beyond -sec-tol percent (the guard against wall-time
// regressions; wider by default, since timings are noisier than
// allocation counts). A benchmark that gets faster than the band is
// reported as a warning — a hint the baseline is stale — but never
// fails the run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labelled `go test -bench` invocation.
type Run struct {
	Label      string      `json:"label"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// File is the whole trajectory file: one run per recorded data point.
type File struct {
	Runs []Run `json:"runs"`
}

// upsert adds r to the trajectory, replacing an existing run with the
// same label in place (keeping its position in the history) rather than
// appending a duplicate data point.
func (f *File) upsert(r Run) {
	for i := range f.Runs {
		if f.Runs[i].Label == r.Label {
			f.Runs[i] = r
			return
		}
	}
	f.Runs = append(f.Runs, r)
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, errOut io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		out      = fs.String("o", "BENCH_engine.json", "output JSON file")
		label    = fs.String("label", "run", "label for this benchmark run")
		appendTo = fs.Bool("append", false, "keep existing runs in the output file")
		baseline = fs.String("baseline", "", "pinned baseline JSON; fail on allocs/op or sec/op regression against it")
		allocTol = fs.Float64("alloc-tol", 10, "allowed allocs/op increase over the baseline, percent")
		secTol   = fs.Float64("sec-tol", 25, "allowed sec/op increase over the baseline, percent")
		secFloor = fs.Float64("sec-floor", 0.1, "exempt benchmarks whose baseline sec/op is below this from the sec/op gate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	parsed, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(parsed.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	parsed.Label = *label

	var file File
	if *appendTo {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, &file); err != nil {
				return fmt.Errorf("parsing existing %s: %w", *out, err)
			}
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	file.upsert(parsed)

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}

	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			return err
		}
		var failures int
		for _, r := range checkAllocs(parsed, base, *allocTol) {
			fmt.Fprintln(errOut, "allocs/op regression:", r)
			failures++
		}
		regressions, improvements := checkSecOp(parsed, base, *secTol, *secFloor)
		for _, r := range regressions {
			fmt.Fprintln(errOut, "sec/op regression:", r)
			failures++
		}
		for _, r := range improvements {
			fmt.Fprintln(errOut, "sec/op improvement beyond band (consider refreshing the baseline):", r)
		}
		if failures > 0 {
			return fmt.Errorf("%d benchmark(s) regressed beyond the baseline tolerance", failures)
		}
	}
	return nil
}

// parseBench reads `go test -bench` text output. A benchmark line is
// the name, the iteration count, then (value, unit) pairs; -benchmem
// adds B/op and allocs/op, b.ReportMetric adds custom units.
func parseBench(in io.Reader) (Run, error) {
	var run Run
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			run.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			run.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			run.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			run.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return run, fmt.Errorf("benchmark %s: bad value %q", b.Name, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = val
			}
		}
		run.Benchmarks = append(run.Benchmarks, b)
	}
	return run, sc.Err()
}

// loadBaseline reads a trajectory file and returns the benchmarks of
// its last run (the pinned reference point) by name.
func loadBaseline(path string) (map[string]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var file File
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if len(file.Runs) == 0 {
		return nil, fmt.Errorf("baseline %s has no runs", path)
	}
	base := make(map[string]Benchmark)
	for _, b := range file.Runs[len(file.Runs)-1].Benchmarks {
		base[b.Name] = b
	}
	return base, nil
}

// checkAllocs compares a run's allocs/op against the baseline and
// returns a description of every regression beyond tolPct percent.
// Benchmarks absent from the baseline pass (new benchmarks are not
// regressions).
func checkAllocs(run Run, base map[string]Benchmark, tolPct float64) []string {
	var regressions []string
	for _, b := range run.Benchmarks {
		pin, ok := base[b.Name]
		if !ok {
			continue
		}
		want := pin.AllocsPerOp
		limit := want * (1 + tolPct/100)
		if want == 0 {
			limit = 0
		}
		if b.AllocsPerOp > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (limit %.0f)",
					b.Name, b.AllocsPerOp, want, limit))
		}
	}
	return regressions
}

// checkSecOp compares a run's ns/op against the baseline within a
// symmetric ±tolPct band. Slower than the band is a regression; faster
// than the band is an improvement worth re-pinning (returned separately
// so callers warn instead of failing — a stale slow baseline would
// otherwise mask later regressions up to the accumulated headroom).
// Benchmarks absent from the baseline, pinned at zero, or pinned below
// floorSec pass: a percentage band on a micro-benchmark's single
// -benchtime=1x sample is pure scheduler noise, and the allocs/op gate
// already covers those exactly.
func checkSecOp(run Run, base map[string]Benchmark, tolPct, floorSec float64) (regressions, improvements []string) {
	for _, b := range run.Benchmarks {
		pin, ok := base[b.Name]
		if !ok || pin.NsPerOp <= 0 || pin.NsPerOp < floorSec*1e9 {
			continue
		}
		want := pin.NsPerOp
		deltaPct := (b.NsPerOp - want) / want * 100
		switch {
		case deltaPct > tolPct:
			regressions = append(regressions,
				fmt.Sprintf("%s: %.3gs/op vs baseline %.3gs (%+.1f%%, tolerance %.0f%%)",
					b.Name, b.NsPerOp/1e9, want/1e9, deltaPct, tolPct))
		case deltaPct < -tolPct:
			improvements = append(improvements,
				fmt.Sprintf("%s: %.3gs/op vs baseline %.3gs (%+.1f%%)",
					b.Name, b.NsPerOp/1e9, want/1e9, deltaPct))
		}
	}
	return regressions, improvements
}
