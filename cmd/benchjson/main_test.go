package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: nbtinoc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTableII           	       1	4674572191 ns/op	        14.91 gap_pts	73962736 B/op	  242180 allocs/op
BenchmarkEngineIdle        	  100000	        41.87 ns/op	        41.85 ns/cycle	       0 B/op	       0 allocs/op
PASS
ok  	nbtinoc	4.679s
`

func TestParseBench(t *testing.T) {
	run, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if run.Goos != "linux" || run.Pkg != "nbtinoc" {
		t.Fatalf("header parse: %+v", run)
	}
	if len(run.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(run.Benchmarks))
	}
	b := run.Benchmarks[0]
	if b.Name != "BenchmarkTableII" || b.Iterations != 1 {
		t.Fatalf("first benchmark: %+v", b)
	}
	if b.NsPerOp != 4674572191 || b.AllocsPerOp != 242180 || b.BytesPerOp != 73962736 {
		t.Fatalf("std units: %+v", b)
	}
	if b.Metrics["gap_pts"] != 14.91 {
		t.Fatalf("custom metric: %+v", b.Metrics)
	}
	if run.Benchmarks[1].Metrics["ns/cycle"] != 41.85 {
		t.Fatalf("ns/cycle metric: %+v", run.Benchmarks[1].Metrics)
	}
}

func TestRunWritesAndAppends(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	if err := run([]string{"-o", out, "-label", "before"},
		strings.NewReader(sampleBench), os.Stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-o", out, "-label", "after", "-append"},
		strings.NewReader(sampleBench), os.Stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file File
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.Runs) != 2 || file.Runs[0].Label != "before" || file.Runs[1].Label != "after" {
		t.Fatalf("runs after append: %+v", file.Runs)
	}
}

func TestBaselineRegressionFails(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	base := File{Runs: []Run{{Label: "pinned", Benchmarks: []Benchmark{
		{Name: "BenchmarkTableII", AllocsPerOp: 100},
		{Name: "BenchmarkEngineIdle", AllocsPerOp: 0},
	}}}}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Sample has 242180 allocs/op for TableII — far over the 100 pin.
	err = run([]string{"-o", filepath.Join(dir, "out.json"), "-baseline", baseline},
		strings.NewReader(sampleBench), os.Stderr)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("regression not detected: %v", err)
	}
}

func TestBaselinePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	base := File{Runs: []Run{{Label: "pinned", Benchmarks: []Benchmark{
		{Name: "BenchmarkTableII", AllocsPerOp: 242180},
		{Name: "BenchmarkEngineIdle", AllocsPerOp: 0},
	}}}}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-o", filepath.Join(dir, "out.json"), "-baseline", baseline},
		strings.NewReader(sampleBench), os.Stderr); err != nil {
		t.Fatal(err)
	}
}

func TestZeroAllocBaselineIsStrict(t *testing.T) {
	base := map[string]float64{"BenchmarkEngineIdle": 0}
	r := Run{Benchmarks: []Benchmark{{Name: "BenchmarkEngineIdle", AllocsPerOp: 1}}}
	if regs := checkAllocs(r, base, 10); len(regs) != 1 {
		t.Fatalf("zero-alloc baseline not strict: %v", regs)
	}
}
