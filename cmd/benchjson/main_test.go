package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: nbtinoc
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTableII           	       1	4674572191 ns/op	        14.91 gap_pts	73962736 B/op	  242180 allocs/op
BenchmarkEngineIdle        	  100000	        41.87 ns/op	        41.85 ns/cycle	       0 B/op	       0 allocs/op
PASS
ok  	nbtinoc	4.679s
`

func TestParseBench(t *testing.T) {
	run, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if run.Goos != "linux" || run.Pkg != "nbtinoc" {
		t.Fatalf("header parse: %+v", run)
	}
	if len(run.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(run.Benchmarks))
	}
	b := run.Benchmarks[0]
	if b.Name != "BenchmarkTableII" || b.Iterations != 1 {
		t.Fatalf("first benchmark: %+v", b)
	}
	if b.NsPerOp != 4674572191 || b.AllocsPerOp != 242180 || b.BytesPerOp != 73962736 {
		t.Fatalf("std units: %+v", b)
	}
	if b.Metrics["gap_pts"] != 14.91 {
		t.Fatalf("custom metric: %+v", b.Metrics)
	}
	if run.Benchmarks[1].Metrics["ns/cycle"] != 41.85 {
		t.Fatalf("ns/cycle metric: %+v", run.Benchmarks[1].Metrics)
	}
}

func TestRunWritesAndAppends(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	if err := run([]string{"-o", out, "-label", "before"},
		strings.NewReader(sampleBench), os.Stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-o", out, "-label", "after", "-append"},
		strings.NewReader(sampleBench), os.Stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file File
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.Runs) != 2 || file.Runs[0].Label != "before" || file.Runs[1].Label != "after" {
		t.Fatalf("runs after append: %+v", file.Runs)
	}
}

func TestRunReplacesSameLabelInPlace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	for _, label := range []string{"before", "abc1234", "after"} {
		if err := run([]string{"-o", out, "-label", label, "-append"},
			strings.NewReader(sampleBench), os.Stderr); err != nil {
			t.Fatal(err)
		}
	}
	// Re-benching the middle label must refresh that run where it sits,
	// not append a fourth, indistinguishable data point.
	faster := strings.ReplaceAll(sampleBench, "4674572191 ns/op", "1674572191 ns/op")
	if err := run([]string{"-o", out, "-label", "abc1234", "-append"},
		strings.NewReader(faster), os.Stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var file File
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.Runs) != 3 {
		t.Fatalf("got %d runs, want 3 (same-label run must replace)", len(file.Runs))
	}
	if file.Runs[1].Label != "abc1234" || file.Runs[1].Benchmarks[0].NsPerOp != 1674572191 {
		t.Fatalf("middle run not replaced in place: %+v", file.Runs[1])
	}
	if file.Runs[0].Label != "before" || file.Runs[2].Label != "after" {
		t.Fatalf("neighbouring runs disturbed: %+v", file.Runs)
	}
}

func TestBaselineRegressionFails(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	base := File{Runs: []Run{{Label: "pinned", Benchmarks: []Benchmark{
		{Name: "BenchmarkTableII", AllocsPerOp: 100},
		{Name: "BenchmarkEngineIdle", AllocsPerOp: 0},
	}}}}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Sample has 242180 allocs/op for TableII — far over the 100 pin.
	err = run([]string{"-o", filepath.Join(dir, "out.json"), "-baseline", baseline},
		strings.NewReader(sampleBench), os.Stderr)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("regression not detected: %v", err)
	}
}

func TestBaselinePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	base := File{Runs: []Run{{Label: "pinned", Benchmarks: []Benchmark{
		{Name: "BenchmarkTableII", AllocsPerOp: 242180},
		{Name: "BenchmarkEngineIdle", AllocsPerOp: 0},
	}}}}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-o", filepath.Join(dir, "out.json"), "-baseline", baseline},
		strings.NewReader(sampleBench), os.Stderr); err != nil {
		t.Fatal(err)
	}
}

func TestZeroAllocBaselineIsStrict(t *testing.T) {
	base := map[string]Benchmark{"BenchmarkEngineIdle": {Name: "BenchmarkEngineIdle", AllocsPerOp: 0}}
	r := Run{Benchmarks: []Benchmark{{Name: "BenchmarkEngineIdle", AllocsPerOp: 1}}}
	if regs := checkAllocs(r, base, 10); len(regs) != 1 {
		t.Fatalf("zero-alloc baseline not strict: %v", regs)
	}
}

// writeBaseline pins one run with the given benchmarks and returns the
// file path.
func writeBaseline(t *testing.T, dir string, benchmarks ...Benchmark) string {
	t.Helper()
	path := filepath.Join(dir, "baseline.json")
	data, err := json.Marshal(File{Runs: []Run{{Label: "pinned", Benchmarks: benchmarks}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSecOpRegressionFails(t *testing.T) {
	dir := t.TempDir()
	// Sample runs TableII at ~4.67e9 ns/op; a 3e9 pin puts it ~56% over,
	// outside the default 25% band.
	baseline := writeBaseline(t, dir,
		Benchmark{Name: "BenchmarkTableII", NsPerOp: 3e9, AllocsPerOp: 242180},
		Benchmark{Name: "BenchmarkEngineIdle", NsPerOp: 41.87, AllocsPerOp: 0})
	var errBuf strings.Builder
	err := run([]string{"-o", filepath.Join(dir, "out.json"), "-baseline", baseline},
		strings.NewReader(sampleBench), &errBuf)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("sec/op regression not detected: %v", err)
	}
	if !strings.Contains(errBuf.String(), "sec/op regression: BenchmarkTableII") {
		t.Errorf("regression not named on stderr:\n%s", errBuf.String())
	}
}

func TestSecOpWithinToleranceFlag(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBaseline(t, dir,
		Benchmark{Name: "BenchmarkTableII", NsPerOp: 3e9, AllocsPerOp: 242180},
		Benchmark{Name: "BenchmarkEngineIdle", NsPerOp: 41.87, AllocsPerOp: 0})
	// The same ~56% gap passes when -sec-tol widens the band past it.
	if err := run([]string{"-o", filepath.Join(dir, "out.json"), "-baseline", baseline,
		"-sec-tol", "60"}, strings.NewReader(sampleBench), os.Stderr); err != nil {
		t.Fatal(err)
	}
}

func TestSecOpImprovementWarnsButPasses(t *testing.T) {
	dir := t.TempDir()
	// Pin TableII far slower than the sample: the run is a >25%
	// improvement, which must warn about the stale baseline, not fail.
	baseline := writeBaseline(t, dir,
		Benchmark{Name: "BenchmarkTableII", NsPerOp: 9e9, AllocsPerOp: 242180},
		Benchmark{Name: "BenchmarkEngineIdle", NsPerOp: 41.87, AllocsPerOp: 0})
	var errBuf strings.Builder
	if err := run([]string{"-o", filepath.Join(dir, "out.json"), "-baseline", baseline},
		strings.NewReader(sampleBench), &errBuf); err != nil {
		t.Fatalf("improvement treated as failure: %v", err)
	}
	if !strings.Contains(errBuf.String(), "improvement beyond band") {
		t.Errorf("stale-baseline warning missing:\n%s", errBuf.String())
	}
}

func TestSecOpSkipsUnpinnedZeroAndSubFloor(t *testing.T) {
	base := map[string]Benchmark{
		"BenchmarkZeroPin": {Name: "BenchmarkZeroPin", NsPerOp: 0},
		// 1ms pin, below the 0.1s floor: a 1000x slowdown is still
		// exempt — single-sample micro timings are noise.
		"BenchmarkMicro": {Name: "BenchmarkMicro", NsPerOp: 1e6},
	}
	r := Run{Benchmarks: []Benchmark{
		{Name: "BenchmarkZeroPin", NsPerOp: 100},
		{Name: "BenchmarkNew", NsPerOp: 100},
		{Name: "BenchmarkMicro", NsPerOp: 1e9},
	}}
	regs, imps := checkSecOp(r, base, 25, 0.1)
	if len(regs) != 0 || len(imps) != 0 {
		t.Errorf("zero/unpinned/sub-floor benchmarks flagged: %v %v", regs, imps)
	}
	// With the floor lowered the micro regression is visible again.
	if regs, _ := checkSecOp(r, base, 25, 0.0001); len(regs) != 1 {
		t.Errorf("sub-floor exemption not floor-controlled: %v", regs)
	}
}
