package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/sim"
	"nbtinoc/internal/sweep"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	// Tests default to -cache=off so they never touch the user cache
	// dir; a test passing its own -cache flag later wins.
	if err := run(append([]string{"-cache", "off"}, args...), &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func shortArgs(extra ...string) []string {
	base := []string{"-cores", "4", "-vcs", "2", "-warmup", "500", "-cycles", "5000"}
	return append(base, extra...)
}

func TestSweepManifestRecordsRun(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "camp.json")
	runCLI(t, shortArgs("-policy", "sensor-wise",
		"-cache", "rw", "-cache-dir", filepath.Join(dir, "cache"),
		"-sweep-manifest", manifest)...)
	m, err := sweep.LoadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Units) != 1 || m.Units[0].State != sweep.UnitDone {
		t.Fatalf("recorded units: %+v", m.Units)
	}
	// The manifest must resolve to executable units whose specs re-key
	// to the recorded content addresses — the nbtisweep replay contract.
	units, err := m.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if units[0].Key != m.Units[0].Key {
		t.Fatalf("resolved key %s, recorded %s", units[0].Key, m.Units[0].Key)
	}
}

func TestSweepManifestRefusedWithLiveModes(t *testing.T) {
	err := run(shortArgs("-heatmap", "-sweep-manifest", "x.json"), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-sweep-manifest") {
		t.Fatalf("want live-mode refusal, got %v", err)
	}
}

func TestTextOutput(t *testing.T) {
	out := runCLI(t, shortArgs("-policy", "sensor-wise")...)
	for _, want := range []string{"policy      sensor-wise", "VC0", "VC1", "latency", "throughput"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	out := runCLI(t, shortArgs("-policy", "rr-no-sensor", "-format", "json")...)
	var parsed struct {
		Policy    string
		DutyCycle []float64
		Ejected   uint64
	}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if parsed.Policy != "rr-no-sensor" || len(parsed.DutyCycle) != 2 {
		t.Errorf("unexpected JSON payload: %+v", parsed)
	}
	if parsed.Ejected == 0 {
		t.Error("no traffic in JSON output")
	}
}

func TestCSVOutput(t *testing.T) {
	out := runCLI(t, shortArgs("-format", "csv")...)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 VCs
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "policy,workload,probe,vc,duty_pct") {
		t.Errorf("bad csv header: %s", lines[0])
	}
}

func TestAllWorkloads(t *testing.T) {
	for _, w := range []string{"uniform", "transpose", "bit-complement", "bit-reverse",
		"shuffle", "tornado", "neighbor", "hotspot", "app"} {
		if out := runCLI(t, shortArgs("-workload", w)...); !strings.Contains(out, "duty") {
			t.Errorf("workload %s produced no duty output", w)
		}
	}
}

func TestBadFlagsRejected(t *testing.T) {
	cases := [][]string{
		shortArgs("-policy", "bogus"),
		shortArgs("-workload", "spiral"),
		shortArgs("-probe", "0"),
		shortArgs("-probe", "x:E"),
		shortArgs("-probe", "0:Q"),
		shortArgs("-format", "xml"),
		shortArgs("-routing", "zigzag"),
		{"-cores", "5"},
		shortArgs("-trace", "/nonexistent/file.trace"),
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestProbeParsing(t *testing.T) {
	p, err := sim.ParsePortProbe("3:w")
	if err != nil {
		t.Fatal(err)
	}
	if p.Node != 3 || p.Port != noc.West {
		t.Errorf("ParsePortProbe = %+v", p)
	}
}

func TestTraceReplayPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	content := "# trace\n10 0 3 0 4\n20 1 2 0 4\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	// Zero warm-up so the two early trace events fall inside the
	// measured window (warm-up resets the traffic statistics).
	out := runCLI(t, "-cores", "4", "-vcs", "2", "-warmup", "0", "-cycles", "5000",
		"-trace", path)
	if !strings.Contains(out, "trace-replay") {
		t.Errorf("trace workload not reported:\n%s", out)
	}
	if !strings.Contains(out, "2 injected, 2 ejected") {
		t.Errorf("trace packets not delivered:\n%s", out)
	}
}

func TestPhitsAndWakeupFlags(t *testing.T) {
	out := runCLI(t, shortArgs("-phits", "2", "-wakeup", "2", "-policy", "sensor-wise")...)
	if !strings.Contains(out, "sensor-wise") {
		t.Errorf("run with phits/wakeup failed:\n%s", out)
	}
}

func TestAllPortsCSV(t *testing.T) {
	out := runCLI(t, shortArgs("-all-ports")...)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "node,port,vc,duty_pct,vth0,most_degraded,powered_now" {
		t.Fatalf("bad header: %s", lines[0])
	}
	// 2x2 mesh: corner routers have L + 2 mesh inputs = 3 ports x 2 VCs
	// = 6 rows each, 4 routers = 24 rows + header.
	if len(lines) != 25 {
		t.Fatalf("rows = %d, want 25", len(lines))
	}
	mdCount := 0
	for _, l := range lines[1:] {
		cols := strings.Split(l, ",")
		if len(cols) != 7 {
			t.Fatalf("bad row %q", l)
		}
		if cols[5] == "1" {
			mdCount++
		}
	}
	if mdCount != 12 { // one MD VC per port
		t.Errorf("md markers = %d, want 12", mdCount)
	}
}

func TestScenarioConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	content := `{"name":"t","cores":4,"vcs":2,"policy":"rr-no-sensor",
		"workload":"uniform","rate":0.1,"warmup":500,"measure":5000,
		"seed":1,"pv_seed":2}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "-config", path)
	if !strings.Contains(out, "rr-no-sensor") {
		t.Errorf("config file policy not used:\n%s", out)
	}
}

func TestMultiScenarioConfig(t *testing.T) {
	dir := t.TempDir()
	mkScen := func(name, policy string) string {
		path := filepath.Join(dir, name+".json")
		content := `{"name":"` + name + `","cores":4,"vcs":2,"policy":"` + policy + `",
			"workload":"uniform","rate":0.1,"warmup":500,"measure":5000,
			"seed":1,"pv_seed":2}`
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := mkScen("first", "rr-no-sensor")
	b := mkScen("second", "sensor-wise")

	out := runCLI(t, "-config", a+","+b, "-j", "2")
	// Headers appear in input order regardless of completion order.
	iA := strings.Index(out, "=== scenario first ===")
	iB := strings.Index(out, "=== scenario second ===")
	if iA < 0 || iB < 0 || iA > iB {
		t.Fatalf("scenario headers missing or out of order:\n%s", out)
	}
	if !strings.Contains(out, "rr-no-sensor") || !strings.Contains(out, "sensor-wise") {
		t.Errorf("per-scenario policies not reported:\n%s", out)
	}

	// Output must not depend on the worker count.
	if seq := runCLI(t, "-config", a+","+b, "-j", "1"); seq != out {
		t.Errorf("-j 1 and -j 2 outputs differ:\n--- j=2\n%s\n--- j=1\n%s", out, seq)
	}

	// Per-run file flags are single-scenario only.
	for _, extra := range []string{"-aging-out", "-aging-in", "-flit-trace"} {
		args := []string{"-config", a + "," + b, extra, filepath.Join(dir, "x")}
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("%s accepted with multiple scenarios", extra)
		}
	}
}

func TestMeshFlag(t *testing.T) {
	// A rectangular geometry runs end to end.
	out := runCLI(t, "-mesh", "4x2", "-vcs", "2", "-warmup", "500", "-cycles", "5000")
	if !strings.Contains(out, "duty") || !strings.Contains(out, "ejected") {
		t.Errorf("rectangular mesh run incomplete:\n%s", out)
	}
	// A square -mesh is exactly the -cores shorthand.
	square := runCLI(t, "-mesh", "3x3", "-vcs", "2", "-warmup", "500", "-cycles", "5000")
	cores := runCLI(t, "-cores", "9", "-vcs", "2", "-warmup", "500", "-cycles", "5000")
	if square != cores {
		t.Errorf("-mesh 3x3 and -cores 9 outputs differ:\n--- mesh\n%s\n--- cores\n%s",
			square, cores)
	}
	// Malformed geometries are rejected.
	for _, bad := range []string{"4", "0x4", "4x-1", "axb"} {
		if err := run([]string{"-mesh", bad, "-cycles", "100"}, &bytes.Buffer{}); err == nil {
			t.Errorf("-mesh %q accepted", bad)
		}
	}
}

// TestMesh32Golden pins a 32×32 run (1024 routers) byte-for-byte: the
// flat-arena engine's largest supported scaling point completes and
// stays deterministic. Regenerate for an intentional output change:
//
//	go run ./cmd/nbtisim -mesh 32x32 -vcs 2 -policy sensor-wise -rate 0.05 \
//	  -warmup 100 -cycles 1000 > cmd/nbtisim/testdata/golden_mesh32.txt
func TestMesh32Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 1100 cycles of a 1024-router mesh")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_mesh32.txt"))
	if err != nil {
		t.Fatal(err)
	}
	got := runCLI(t, "-mesh", "32x32", "-vcs", "2", "-policy", "sensor-wise",
		"-rate", "0.05", "-warmup", "100", "-cycles", "1000")
	if got != string(want) {
		t.Errorf("32x32 output diverged from golden_mesh32.txt:\n--- want\n%s\n--- got\n%s",
			want, got)
	}
}

func TestTechFlag(t *testing.T) {
	out45 := runCLI(t, shortArgs("-tech", "45", "-format", "json")...)
	out32 := runCLI(t, shortArgs("-tech", "32", "-format", "json")...)
	if out45 == out32 {
		t.Error("tech node flag had no effect")
	}
	if err := run(shortArgs("-tech", "28"), &bytes.Buffer{}); err == nil {
		t.Error("unsupported tech node accepted")
	}
}

func TestAgingSnapshotFlags(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "aging.json")
	// Epoch 1: heavy uniform traffic, snapshot at the end.
	runCLI(t, "-cores", "4", "-vcs", "2", "-warmup", "0", "-cycles", "5000",
		"-rate", "0.3", "-policy", "rr-no-sensor", "-aging-out", snap)
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	// Epoch 2: restore and continue under a different policy.
	out := runCLI(t, "-cores", "4", "-vcs", "2", "-warmup", "0", "-cycles", "5000",
		"-rate", "0.05", "-policy", "sensor-wise", "-aging-in", snap)
	if !strings.Contains(out, "sensor-wise") {
		t.Errorf("epoch 2 failed:\n%s", out)
	}
	// Restoring into a mismatched architecture must fail.
	if err := run([]string{"-cores", "16", "-vcs", "4", "-cycles", "100",
		"-aging-in", snap}, &bytes.Buffer{}); err == nil {
		t.Error("mismatched snapshot accepted")
	}
}

func TestHeatmap(t *testing.T) {
	out := runCLI(t, shortArgs("-heatmap", "-workload", "hotspot")...)
	if !strings.Contains(out, "worst per-router") || !strings.Contains(out, "shade:") {
		t.Errorf("heatmap output malformed:\n%s", out)
	}
	// 2x2 mesh: exactly 2 grid rows between header and legend.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("heatmap lines = %d, want 4:\n%s", len(lines), out)
	}
}

func TestFlitTraceFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flits.txt")
	runCLI(t, "-cores", "4", "-vcs", "2", "-warmup", "0", "-cycles", "2000",
		"-rate", "0.1", "-flit-trace", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ev=INJECT", "ev=EJECT", "ev=ST"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("flit trace missing %q", want)
		}
	}
}
