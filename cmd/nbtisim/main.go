// Command nbtisim runs one NoC simulation scenario and reports the
// per-VC NBTI-duty-cycles of a probed input port together with network
// performance statistics.
//
// Examples:
//
//	nbtisim -cores 16 -vcs 4 -policy sensor-wise -rate 0.2
//	nbtisim -cores 4 -vcs 2 -policy rr-no-sensor -workload app -seed 3
//	nbtisim -mesh 32x32 -vcs 4 -policy sensor-wise -cycles 5000
//	nbtisim -trace my.trace -policy sensor-wise -format json
//	nbtisim -config a.json,b.json,c.json -j 0
//
// -config accepts a comma-separated list of scenario files; the
// scenarios run concurrently on a bounded worker pool (-j caps the
// workers, 1 forces sequential) and are reported in input order, so the
// output never depends on the worker count. The aging-snapshot and
// flit-trace flags write per-run files and therefore require a single
// scenario.
//
// Plain scenario runs are memoized in the content-addressed result
// cache (-cache, -cache-dir; -cache=off disables). Modes that need the
// live network — -all-ports, -heatmap, -trace, -aging-in/-aging-out,
// -flit-trace — always simulate.
//
// -cpuprofile, -memprofile and -exectrace write the standard Go runtime
// profiles for the whole run (-trace is taken by flit trace replay).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"nbtinoc/internal/cache"
	"nbtinoc/internal/core"
	"nbtinoc/internal/metrics"
	"nbtinoc/internal/noc"
	"nbtinoc/internal/prof"
	"nbtinoc/internal/sim"
	"nbtinoc/internal/sweep"
	"nbtinoc/internal/traffic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nbtisim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("nbtisim", flag.ContinueOnError)
	// -trace already means flit-trace replay here, so the runtime
	// execution trace is exposed as -exectrace.
	var profFlags prof.Flags
	profFlags.Register(fs, "exectrace")
	var metFlags metrics.CLIFlags
	metFlags.Register(fs)
	var (
		cores    = fs.Int("cores", 16, "number of cores (square mesh)")
		mesh     = fs.String("mesh", "", "mesh geometry WxH, e.g. 16x16 or 8x4 (overrides -cores; rectangular allowed)")
		vcs      = fs.Int("vcs", 4, "virtual channels per vnet per input port")
		vnets    = fs.Int("vnets", 1, "virtual networks")
		policy   = fs.String("policy", "sensor-wise", "recovery policy: "+strings.Join(core.Names(), ", "))
		workload = fs.String("workload", "uniform", "workload: uniform, transpose, bit-complement, bit-reverse, shuffle, tornado, neighbor, hotspot, app")
		rate     = fs.Float64("rate", 0.2, "injection rate (flits/cycle/node) for synthetic workloads")
		pktLen   = fs.Int("pktlen", 4, "packet length in flits for synthetic workloads")
		warmup   = fs.Uint64("warmup", 20_000, "warm-up cycles (statistics reset afterwards)")
		measure  = fs.Uint64("cycles", 200_000, "measured cycles")
		seed     = fs.Uint64("seed", 1, "traffic seed")
		pvSeed   = fs.Uint64("pv-seed", 1, "process-variation seed")
		probeStr = fs.String("probe", "0:E", "probed input port as node:port (port in L,N,E,S,W)")
		traceIn  = fs.String("trace", "", "replay a trace file instead of a synthetic workload")
		format   = fs.String("format", "text", "output format: text, csv, json")
		routing  = fs.String("routing", "xy", "routing algorithm: xy, yx, west-first")
		phits    = fs.Int("phits", 1, "link serialization factor (phits per flit)")
		wakeup   = fs.Int("wakeup", 0, "sleep-transistor wake-up latency in cycles")
		tech     = fs.Int("tech", 45, "technology node: 45 or 32 nm")
		cfgPath  = fs.String("config", "", "JSON scenario file(s), comma-separated (overrides the scenario flags)")
		allPorts = fs.Bool("all-ports", false, "dump every router input port as CSV instead of one probe")
		heatmap  = fs.Bool("heatmap", false, "print an ASCII mesh heatmap of per-router worst duty-cycles")
		agingIn  = fs.String("aging-in", "", "restore a JSON aging snapshot before the run (multi-epoch campaigns)")
		agingOut = fs.String("aging-out", "", "write a JSON aging snapshot after the run")
		flitLog  = fs.String("flit-trace", "", "write a flit-level pipeline event trace to this file (large!)")
		jobs     = fs.Int("j", 0, "parallel workers for multi-scenario -config runs: 0 = one per core, 1 = sequential")

		cacheMode = fs.String("cache", "rw", "result cache mode: off, ro or rw")
		cacheDir  = fs.String("cache-dir", "", "result cache directory (default: user cache dir)")
		sweepOut  = fs.String("sweep-manifest", "", "record every cached scenario into a sweep manifest at this path (replayable with nbtisweep)")
		emitSpec  = fs.Bool("emit-spec", false, "print the declarative spec JSON for each scenario and exit without simulating (submittable to nbtisimd)")
		verbose   = fs.Bool("v", false, "print result-cache statistics to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profFlags.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	// -v forces a registry so the progress line has counters to read.
	// Setup must precede openCache and every scenario run: instruments
	// are resolved at construction time against the then-current default.
	finishMet, err := metFlags.Setup(*verbose, prof.HTTPHandler(), func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "nbtisim: "+format+"\n", args...)
	})
	if err != nil {
		return err
	}
	defer func() {
		if merr := finishMet(); merr != nil && err == nil {
			err = merr
		}
	}()
	if *verbose {
		stop := startProgress("nbtisim", &metrics.Progress{
			R:          metrics.Default(),
			Cycles:     noc.MetricCycles,
			JobsDone:   sim.MetricJobsDone,
			JobsTotal:  sim.MetricJobsTotal,
			SampleHeap: true,
			Extra:      ffRatioExtra(metrics.Default()),
		})
		defer stop()
	}

	var scens []*sim.Scenario
	if *cfgPath != "" {
		for _, path := range strings.Split(*cfgPath, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			scen, err := sim.LoadScenarioFile(path)
			if err != nil {
				return err
			}
			scens = append(scens, scen)
		}
		if len(scens) == 0 {
			return fmt.Errorf("-config %q names no scenario files", *cfgPath)
		}
	} else {
		scen := &sim.Scenario{
			Name:          "cli",
			Cores:         *cores,
			VCs:           *vcs,
			VNets:         *vnets,
			Policy:        *policy,
			TechNode:      *tech,
			Workload:      *workload,
			Rate:          *rate,
			PacketLen:     *pktLen,
			Phits:         *phits,
			WakeupLatency: *wakeup,
			Warmup:        *warmup,
			Measure:       *measure,
			Seed:          *seed,
			PVSeed:        *pvSeed,
		}
		if *mesh != "" {
			m, err := sim.ParseMesh(*mesh)
			if err != nil {
				return err
			}
			scen.Width, scen.Height, scen.Cores = m.Width, m.Height, m.Cores()
		}
		scens = []*sim.Scenario{scen}
	}
	multi := len(scens) > 1
	if multi && (*agingIn != "" || *agingOut != "" || *flitLog != "") {
		return fmt.Errorf("-aging-in, -aging-out and -flit-trace write per-run files and require a single -config scenario")
	}
	probe, err := sim.ParsePortProbe(*probeStr)
	if err != nil {
		return err
	}

	// Modes that inspect the live network (or replay a non-declarative
	// trace generator) cannot be served from the result cache.
	live := *allPorts || *heatmap || *traceIn != "" ||
		*agingIn != "" || *agingOut != "" || *flitLog != ""
	// -emit-spec turns the CLI into a spec authoring tool: the same
	// flag vocabulary, but the output is the declarative request body
	// the nbtisimd daemon accepts instead of a simulation result.
	if *emitSpec {
		if live {
			return fmt.Errorf("-emit-spec serialises declarative specs and cannot combine with live modes (-all-ports, -heatmap, -trace, -aging-in/-out, -flit-trace)")
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		for _, scen := range scens {
			spec, err := scen.Spec([]sim.PortProbe{probe})
			if err != nil {
				return err
			}
			if spec.Net.Routing, err = noc.ParseRouting(*routing); err != nil {
				return err
			}
			if err := enc.Encode(spec); err != nil {
				return err
			}
		}
		return nil
	}
	store, err := openCache("nbtisim", *cacheMode, *cacheDir)
	if err != nil {
		return err
	}
	runner := sim.Runner{Store: store}
	// -sweep-manifest records every cache-keyed scenario this run
	// executes, so a -config batch doubles as a sweep campaign
	// definition nbtisweep can shard and resume.
	var recorder *sweep.Recorder
	if *sweepOut != "" {
		if live {
			return fmt.Errorf("-sweep-manifest records cached scenarios and cannot combine with live modes (-all-ports, -heatmap, -trace, -aging-in/-out, -flit-trace)")
		}
		recorder = sweep.NewRecorder("nbtisim")
		runner.Record = recorder.Record
	}

	runScenario := func(scen *sim.Scenario) (*sim.RunResult, error) {
		cfg, err := scen.BuildConfig()
		if err != nil {
			return nil, err
		}
		if cfg.Routing, err = noc.ParseRouting(*routing); err != nil {
			return nil, err
		}
		var gen traffic.Generator
		if *traceIn != "" {
			gen, err = loadTrace(*traceIn)
		} else {
			gen, err = scen.BuildGenerator()
		}
		if err != nil {
			return nil, err
		}
		rc := sim.RunConfig{
			Net:        cfg,
			PolicyName: scen.Policy,
			Warmup:     scen.Warmup,
			Measure:    scen.Measure,
			Gen:        gen,
		}
		if *agingIn != "" {
			snap, err := loadAging(*agingIn)
			if err != nil {
				return nil, err
			}
			rc.RestoreAging = &snap
		}
		if *flitLog != "" {
			f, err := os.Create(*flitLog)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			bw := bufio.NewWriter(f)
			defer bw.Flush()
			rc.Tracer = &noc.WriterTracer{W: bw}
		}
		res, err := sim.Run(rc, []sim.PortProbe{probe})
		if err != nil {
			return nil, err
		}
		if *agingOut != "" {
			if err := saveAging(*agingOut, res.Net.AgingSnapshot()); err != nil {
				return nil, err
			}
		}
		return res, nil
	}

	// Scenarios execute through the same bounded pool as the table
	// drivers and are rendered sequentially in input order afterwards.
	// The cached default path carries only the serialisable summary;
	// live modes additionally keep the network for their renderers.
	type outcome struct {
		sum *sim.RunSummary
		res *sim.RunResult
	}
	results := make([]outcome, len(scens))
	if err := (sim.Pool{Workers: *jobs}).Run(len(scens), func(i int) error {
		if !live {
			spec, err := scens[i].Spec([]sim.PortProbe{probe})
			if err != nil {
				return err
			}
			if spec.Net.Routing, err = noc.ParseRouting(*routing); err != nil {
				return err
			}
			sum, err := runner.Run(spec)
			if err != nil {
				return err
			}
			results[i] = outcome{sum: sum}
			return nil
		}
		res, err := runScenario(scens[i])
		if err != nil {
			return err
		}
		results[i] = outcome{sum: res.Summary(), res: res}
		return nil
	}); err != nil {
		return err
	}

	for i, r := range results {
		if multi {
			fmt.Fprintf(out, "=== scenario %s ===\n", scens[i].Name)
		}
		var err error
		switch {
		case *allPorts:
			err = renderAllPorts(out, r.res)
		case *heatmap:
			err = renderHeatmap(out, r.res)
		default:
			err = render(out, *format, r.sum)
		}
		if err != nil {
			return err
		}
	}
	if recorder != nil {
		m := recorder.Manifest()
		if err := m.Save(*sweepOut); err != nil {
			return err
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "nbtisim: recorded %d units into %s\n", len(m.Units), *sweepOut)
		}
	}
	if *verbose && store != nil {
		fmt.Fprintf(os.Stderr, "nbtisim: cache: %s\n", store.Stats())
	}
	return nil
}

// ffRatioExtra annotates the -v progress line with the fraction of
// simulated cycles covered by event-horizon fast-forward. It stays
// empty until the first bulk jump, so fully-busy runs keep the line
// unchanged and runs without a registry cost nothing.
func ffRatioExtra(r *metrics.Registry) func() string {
	return func() string {
		ff := r.CounterValue(noc.MetricCyclesFastForwarded)
		cycles := r.CounterValue(noc.MetricCycles)
		if ff == 0 || cycles == 0 {
			return ""
		}
		return fmt.Sprintf("ff %.1f%%", 100*float64(ff)/float64(cycles))
	}
}

// startProgress prints p to stderr every 2 seconds until the returned
// stop function runs. The wall clock stays confined to package main —
// metrics.Progress only receives injected timestamps.
func startProgress(prog string, p *metrics.Progress) func() {
	//nbtilint:allow wallclock display-only: progress timestamps pace a stderr status line and never feed simulator state or outputs
	p.Start(time.Now().UnixNano())
	//nbtilint:allow wallclock display-only: the ticker paces the stderr progress line only
	tick := time.NewTicker(2 * time.Second)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				//nbtilint:allow wallclock display-only: rate-window timestamp for the stderr progress line only
				fmt.Fprintf(os.Stderr, "%s: %s\n", prog, p.Line(time.Now().UnixNano()))
			}
		}
	}()
	return func() {
		tick.Stop()
		close(done)
	}
}

// openCache builds the result store selected by the -cache/-cache-dir
// flags; mode off yields a nil store (the always-compute pass-through).
func openCache(prog, mode, dir string) (*cache.Store, error) {
	m, err := cache.ParseMode(mode)
	if err != nil {
		return nil, err
	}
	if m == cache.Off {
		return nil, nil
	}
	if dir == "" {
		dir = cache.DefaultDir()
	}
	st := cache.Open(dir, m)
	// The library never reads the wall clock (nbtilint's determinism
	// rules); the CLI injects it so hits can report time saved.
	//nbtilint:allow wallclock display-only: compute durations are recorded in cache entries so later hits can report wall-clock time saved; they never feed simulator state or outputs
	st.Clock = func() int64 { return time.Now().UnixNano() }
	if m == cache.ReadWrite {
		// Lease files give cross-process single-flight: a concurrent
		// nbtisweep campaign (or second CLI run) over the same cache
		// directory never computes the same scenario twice.
		//nbtilint:allow wallclock display-only: lease waiters sleep between polls; cache contents and rendered output are independent of any timing
		st.Lease = cache.DefaultLeasePolicy(func(ns int64) { time.Sleep(time.Duration(ns)) })
	}
	st.Warnf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, prog+": cache: "+format+"\n", args...)
	}
	return st, nil
}

// renderHeatmap prints the mesh as a grid; each tile shows the worst
// (maximum) NBTI-duty-cycle across its router's input VC buffers and a
// coarse shade, making spatial stress hot-spots visible at a glance.
func renderHeatmap(out io.Writer, res *sim.RunResult) error {
	net := res.Net
	cfg := net.Config()
	fmt.Fprintf(out, "worst per-router NBTI-duty-cycle (%%), policy %s, %s\n",
		res.Policy, res.Workload)
	shades := []struct {
		limit float64
		mark  string
	}{{10, "."}, {25, "-"}, {50, "+"}, {75, "#"}, {101, "@"}}
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			node := noc.Coord{X: x, Y: y}.NodeOf(cfg.Width)
			worst := 0.0
			r := net.Router(node)
			for p := noc.Port(0); p < noc.NumPorts; p++ {
				if r.Input(p) == nil {
					continue
				}
				for vc := 0; vc < cfg.TotalVCs(); vc++ {
					if d := net.DutyCycle(node, p, vc); d > worst {
						worst = d
					}
				}
			}
			mark := "@"
			for _, sh := range shades {
				if worst < sh.limit {
					mark = sh.mark
					break
				}
			}
			fmt.Fprintf(out, " %s%5.1f", mark, worst)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out, "shade: . <10%  - <25%  + <50%  # <75%  @ >=75%")
	return nil
}

// loadAging reads a JSON aging snapshot.
func loadAging(path string) (noc.AgingState, error) {
	var st noc.AgingState
	data, err := os.ReadFile(path)
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, fmt.Errorf("parsing aging snapshot %s: %w", path, err)
	}
	return st, nil
}

// saveAging writes a JSON aging snapshot.
func saveAging(path string, st noc.AgingState) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// loadTrace builds a replayer from a trace file.
func loadTrace(path string) (traffic.Generator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := traffic.ReadTrace(f)
	if err != nil {
		return nil, err
	}
	return traffic.NewReplayer(events), nil
}

// renderAllPorts dumps the duty-cycle of every VC of every router input
// port as CSV — the raw data behind a network-wide aging heatmap.
func renderAllPorts(out io.Writer, res *sim.RunResult) error {
	fmt.Fprintln(out, "node,port,vc,duty_pct,vth0,most_degraded,powered_now")
	net := res.Net
	cfg := net.Config()
	for node := noc.NodeID(0); int(node) < net.Nodes(); node++ {
		r := net.Router(node)
		for p := noc.Port(0); p < noc.NumPorts; p++ {
			iu := r.Input(p)
			if iu == nil {
				continue
			}
			md := net.MostDegradedVC(node, p, 0)
			for vc := 0; vc < cfg.TotalVCs(); vc++ {
				isMD := 0
				if vc == md {
					isMD = 1
				}
				pow := 0
				if iu.Powered(vc) {
					pow = 1
				}
				fmt.Fprintf(out, "%d,%v,%d,%.4f,%.6f,%d,%d\n",
					node, p, vc, net.DutyCycle(node, p, vc),
					net.Vth0(node, p, vc), isMD, pow)
			}
		}
	}
	return nil
}

// render forwards to the shared summary renderer (internal/sim), the
// same code path the nbtisimd result endpoint serves — which is what
// makes the daemon-vs-CLI byte comparison in CI exact.
func render(out io.Writer, format string, res *sim.RunSummary) error {
	return res.Render(out, format)
}
