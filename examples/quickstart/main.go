// Quickstart: build a 4-core mesh, run the same uniform workload under
// the non-NBTI-aware baseline and under the paper's sensor-wise policy,
// and compare the NBTI-duty-cycle of every VC of one router input port.
package main

import (
	"fmt"
	"log"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/sim"
	"nbtinoc/internal/traffic"
)

func main() {
	probe := sim.PortProbe{Node: 0, Port: noc.East}

	for _, policy := range []string{"baseline", "rr-no-sensor", "sensor-wise"} {
		// The paper's base configuration: 45 nm, 4-flit buffers, 64-bit
		// flits — here a 2x2 mesh with 2 VCs per input port.
		cfg, err := sim.BaseConfig(4, 2)
		if err != nil {
			log.Fatal(err)
		}
		cfg.PVSeed = 42 // same silicon for every policy

		gen, err := traffic.NewSynthetic(traffic.SyntheticConfig{
			Pattern:   traffic.Uniform,
			Width:     cfg.Width,
			Height:    cfg.Height,
			Rate:      0.1, // flits/cycle/node
			PacketLen: 4,
			Seed:      7, // same offered traffic for every policy
		})
		if err != nil {
			log.Fatal(err)
		}

		res, err := sim.Run(sim.RunConfig{
			Net:        cfg,
			PolicyName: policy,
			Warmup:     10_000,
			Measure:    100_000,
			Gen:        gen,
		}, []sim.PortProbe{probe})
		if err != nil {
			log.Fatal(err)
		}

		p := res.Ports[0]
		fmt.Printf("%-14s east port of router 0 — most degraded VC: %d\n",
			res.Policy, p.MostDegraded)
		for vc, d := range p.Duty {
			marker := "  "
			if vc == p.MostDegraded {
				marker = " *"
			}
			fmt.Printf("  VC%d%s NBTI-duty-cycle %6.2f%%  (Vth0 %.4f V)\n",
				vc, marker, d, p.Vth0[vc])
		}
		fmt.Printf("  latency %.1f cycles, throughput %.3f flits/cycle/node\n\n",
			res.AvgLatency, res.Throughput)
	}

	fmt.Println("The baseline stresses every buffer 100% of the time; the")
	fmt.Println("sensor-wise policy drives the most degraded VC's stress toward")
	fmt.Println("zero by gating it whenever it is idle.")
}
