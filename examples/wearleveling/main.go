// Wear-leveling: run a multi-epoch aging campaign with the closed-loop
// sensor configuration (non-zero projection horizon), in which the
// most-degraded ranking follows *accumulated stress* rather than the
// static process-variation draw alone.
//
// Epoch by epoch, the sensor-wise policy rests whichever buffer is
// currently worst, so degradation equalises across the VCs of a port —
// the classic wear-leveling behaviour — while the static-ranking
// configuration of the paper's tables keeps protecting the same victim.
// Epochs are composed with nbti.History (time-weighted duty-cycles) and
// carried across runs with the network's aging snapshot.
package main

import (
	"fmt"
	"log"

	"nbtinoc/internal/nbti"
	"nbtinoc/internal/noc"
	"nbtinoc/internal/sensor"
	"nbtinoc/internal/sim"
	"nbtinoc/internal/traffic"
)

const (
	vcs          = 4
	epochs       = 4
	epochCycles  = 60_000
	epochYears   = 1.0
	probeNodeID  = 0
	epochPVSeed  = 77
	trafficSeed0 = 100
)

func main() {
	model := nbti.Default45nm()
	probe := sim.PortProbe{Node: probeNodeID, Port: noc.East}

	for _, mode := range []struct {
		name string
		cfg  sensor.Config
	}{
		{"static ranking (paper tables)", sensor.Config{SamplePeriod: 1024}},
		{"closed-loop ranking (horizon 3y)", sensor.Config{
			SamplePeriod: 4096, Horizon: 3 * nbti.SecondsPerYear}},
	} {
		fmt.Printf("=== %s ===\n", mode.name)
		histories := make([]nbti.History, vcs)
		var snapshot *noc.AgingState

		for epoch := 0; epoch < epochs; epoch++ {
			cfg, err := sim.BaseConfig(4, vcs)
			if err != nil {
				log.Fatal(err)
			}
			cfg.PVSeed = epochPVSeed
			cfg.Sensor = mode.cfg
			gen, err := traffic.NewSynthetic(traffic.SyntheticConfig{
				Pattern: traffic.Uniform, Width: 2, Height: 2,
				Rate: 0.15, PacketLen: 4,
				Seed: trafficSeed0 + uint64(epoch),
			})
			if err != nil {
				log.Fatal(err)
			}
			rc := sim.RunConfig{
				Net:        cfg,
				PolicyName: "sensor-wise",
				Warmup:     0,
				Measure:    epochCycles,
				Gen:        gen,
			}
			// Carry accumulated stress into the new epoch so the
			// closed-loop sensors see the full history.
			rc.RestoreAging = snapshot
			res, err := sim.Run(rc, []sim.PortProbe{probe})
			if err != nil {
				log.Fatal(err)
			}
			snap := res.Net.AgingSnapshot()
			snapshot = &snap

			// Record this epoch's duty-cycle per VC. The trackers are
			// cumulative across epochs (snapshot restore), so derive the
			// epoch's own share from the running totals.
			r := res.Ports[0]
			fmt.Printf("epoch %d: per-VC cumulative duty", epoch+1)
			for vc := 0; vc < vcs; vc++ {
				cum := r.Duty[vc] / 100
				if err := setHistory(&histories[vc], cum, float64(epoch+1)*epochYears); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  VC%d %5.1f%%", vc, r.Duty[vc])
			}
			fmt.Printf("   (sensed MD: VC%d)\n", r.MostDegraded)
		}

		fmt.Println("projected Vth after the campaign (Vth0 + ΔVth):")
		minV, maxV := 1.0, 0.0
		for vc := 0; vc < vcs; vc++ {
			// Vth0 from the shared PV draw.
			cfg, _ := sim.BaseConfig(4, vcs)
			cfg.PVSeed = epochPVSeed
			n, err := noc.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			vth := n.Vth0(probeNodeID, noc.East, vc) + histories[vc].DeltaVth(model)
			if vth < minV {
				minV = vth
			}
			if vth > maxV {
				maxV = vth
			}
			fmt.Printf("  VC%d: %.4f V (duty %.1f%% over %d years)\n",
				vc, vth, 100*histories[vc].EffectiveAlpha(), epochs)
		}
		fmt.Printf("Vth spread across VCs: %.1f mV\n\n", 1000*(maxV-minV))
	}
	fmt.Println("A smaller spread means more even wear: the closed-loop ranking")
	fmt.Println("trades a little extra stress on the PV-weakest buffer for")
	fmt.Println("equalised end-of-life margins across the port.")
}

// setHistory replaces the history with a single epoch reflecting the
// cumulative duty-cycle over the elapsed years (trackers are cumulative
// across restored epochs).
func setHistory(h *nbti.History, alpha, years float64) error {
	*h = nbti.History{}
	return h.AddEpoch(alpha, years*nbti.SecondsPerYear)
}
