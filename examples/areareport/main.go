// Area report: explore how the NBTI-awareness overhead of Section III-D
// scales with the router microarchitecture — VC count, buffer depth and
// flit width — using the ORION-style 45 nm area model.
package main

import (
	"fmt"
	"log"

	"nbtinoc/internal/area"
)

func main() {
	p := area.Default45nm()

	fmt.Println("Paper configuration (4 ports, 4 VCs, 4-flit buffers, 64-bit flits):")
	rep, err := area.Estimate(p, area.PaperSpec())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  router %.0f um^2, %d sensors %.0f um^2 (%.2f%% — paper 3.25%%)\n",
		rep.RouterUm2, rep.SensorCount, rep.SensorsUm2, rep.SensorPctOfRouter)
	fmt.Printf("  control links %.2f%% of a data link (paper 3.8%%), total %.2f%% (paper <4%%)\n\n",
		rep.CtrlPctOfDataLink, rep.TotalPctOfBaseline)

	fmt.Println("Scaling with VC count (sensors are per VC):")
	fmt.Printf("  %-4s %-10s %-12s %-10s\n", "VCs", "sensors%", "ctrl-link%", "total%")
	for _, vcs := range []int{2, 4, 8} {
		s := area.PaperSpec()
		s.VCsPerPort = vcs
		r, err := area.Estimate(p, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4d %8.2f%% %10.2f%% %8.2f%%\n",
			vcs, r.SensorPctOfRouter, r.CtrlPctOfDataLink, r.TotalPctOfBaseline)
	}

	fmt.Println("\nScaling with flit width (wider datapaths dilute the overhead):")
	fmt.Printf("  %-6s %-10s %-12s %-10s\n", "bits", "sensors%", "ctrl-link%", "total%")
	for _, bits := range []int{32, 64, 128, 256} {
		s := area.PaperSpec()
		s.FlitBits = bits
		r, err := area.Estimate(p, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6d %8.2f%% %10.2f%% %8.2f%%\n",
			bits, r.SensorPctOfRouter, r.CtrlPctOfDataLink, r.TotalPctOfBaseline)
	}

	fmt.Println("\nScaling with buffer depth (deeper buffers amortise the sensors):")
	fmt.Printf("  %-6s %-10s %-10s\n", "depth", "sensors%", "total%")
	for _, depth := range []int{2, 4, 8, 16} {
		s := area.PaperSpec()
		s.BufferDepth = depth
		r, err := area.Estimate(p, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6d %8.2f%% %8.2f%%\n", depth, r.SensorPctOfRouter, r.TotalPctOfBaseline)
	}
}
