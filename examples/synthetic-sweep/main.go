// Synthetic sweep: reproduce the structure of Tables II/III — the
// NBTI-duty-cycle gap between rr-no-sensor and sensor-wise across
// injection rates and VC counts, on the east input port of the
// upper-left router under uniform traffic.
//
// The paper's trend to observe: with 2 VCs the gap *shrinks* as load
// grows (the lone spare VC saturates), while with 4 VCs it *grows* (the
// policy retains slack to steer packets away from the most degraded VC).
package main

import (
	"fmt"
	"log"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/sim"
	"nbtinoc/internal/traffic"
)

func main() {
	rates := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3}
	for _, vcs := range []int{2, 4} {
		fmt.Printf("=== 16-core mesh, %d VCs per input port ===\n", vcs)
		fmt.Printf("%-6s %-4s %-14s %-14s %-8s\n", "rate", "MD", "rr@MD", "sensor-wise@MD", "gap")
		for _, rate := range rates {
			duty := map[string]sim.PortReading{}
			for _, policy := range []string{"rr-no-sensor", "sensor-wise"} {
				cfg, err := sim.BaseConfig(16, vcs)
				if err != nil {
					log.Fatal(err)
				}
				cfg.PVSeed = 9 // shared silicon per scenario
				gen, err := traffic.NewSynthetic(traffic.SyntheticConfig{
					Pattern:   traffic.Uniform,
					Width:     4,
					Height:    4,
					Rate:      rate,
					PacketLen: 4,
					Seed:      uint64(rate * 1000),
				})
				if err != nil {
					log.Fatal(err)
				}
				res, err := sim.Run(sim.RunConfig{
					Net:        cfg,
					PolicyName: policy,
					Warmup:     10_000,
					Measure:    120_000,
					Gen:        gen,
				}, []sim.PortProbe{{Node: 0, Port: noc.East}})
				if err != nil {
					log.Fatal(err)
				}
				duty[policy] = res.Ports[0]
			}
			md := duty["rr-no-sensor"].MostDegraded
			rr := duty["rr-no-sensor"].Duty[md]
			sw := duty["sensor-wise"].Duty[md]
			fmt.Printf("%-6.2f %-4d %12.2f%% %12.2f%% %7.2f%%\n", rate, md, rr, sw, rr-sw)
		}
		fmt.Println()
	}
}
