// Lifetime projection: feed *measured* NBTI-duty-cycles into the
// long-term Reaction-Diffusion model (Eq. 1) and project the threshold
// voltage of the most degraded VC buffer over a decade — the analysis
// behind the paper's "up to 54.2% net Vth saving" conclusion — plus the
// time each policy buys before a 50 mV degradation budget is exhausted.
package main

import (
	"fmt"
	"log"
	"math"

	"nbtinoc/internal/nbti"
	"nbtinoc/internal/noc"
	"nbtinoc/internal/sim"
	"nbtinoc/internal/traffic"
)

func main() {
	model := nbti.Default45nm()
	probe := sim.PortProbe{Node: 0, Port: noc.East}

	// Measure the duty-cycle of the most degraded VC under each policy
	// on the same scenario (16 cores, 2 VCs, uniform 0.1 flits/cycle).
	alphas := map[string]float64{"baseline": 1.0}
	for _, policy := range []string{"rr-no-sensor", "sensor-wise"} {
		cfg, err := sim.BaseConfig(16, 2)
		if err != nil {
			log.Fatal(err)
		}
		cfg.PVSeed = 5
		gen, err := traffic.NewSynthetic(traffic.SyntheticConfig{
			Pattern: traffic.Uniform, Width: 4, Height: 4,
			Rate: 0.1, PacketLen: 4, Seed: 17,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.RunConfig{
			Net: cfg, PolicyName: policy,
			Warmup: 10_000, Measure: 150_000, Gen: gen,
		}, []sim.PortProbe{probe})
		if err != nil {
			log.Fatal(err)
		}
		r := res.Ports[0]
		alphas[policy] = r.Duty[r.MostDegraded] / 100
	}

	fmt.Println("Measured NBTI-duty-cycle on the most degraded VC (r0-E, 16 cores, inj 0.1):")
	for _, p := range []string{"baseline", "rr-no-sensor", "sensor-wise"} {
		fmt.Printf("  %-14s alpha = %6.2f%%\n", p, 100*alphas[p])
	}

	fmt.Println("\nProjected |ΔVth| of that buffer (Eq. 1, 45 nm, 1.2 V, 350 K):")
	fmt.Printf("  %-7s %12s %14s %12s\n", "years", "baseline", "rr-no-sensor", "sensor-wise")
	for _, years := range []float64{1, 2, 3, 5, 10} {
		w := years * nbti.SecondsPerYear
		fmt.Printf("  %-7.0f %9.1f mV %11.1f mV %9.1f mV\n", years,
			1000*model.DeltaVth(alphas["baseline"], w),
			1000*model.DeltaVth(alphas["rr-no-sensor"], w),
			1000*model.DeltaVth(alphas["sensor-wise"], w))
	}

	w3 := 3 * nbti.SecondsPerYear
	fmt.Printf("\nNet ΔVth saving vs baseline after 3 years: rr %.1f%%, sensor-wise %.1f%%\n",
		100*model.Saving(alphas["rr-no-sensor"], 1, w3),
		100*model.Saving(alphas["sensor-wise"], 1, w3))

	fmt.Println("\nTime to exhaust a 50 mV degradation budget:")
	for _, p := range []string{"baseline", "rr-no-sensor", "sensor-wise"} {
		lt := model.LifetimeToBudget(alphas[p], 0.050)
		if math.IsInf(lt, 1) {
			fmt.Printf("  %-14s > 100 years\n", p)
		} else {
			fmt.Printf("  %-14s %.1f years\n", p, lt/nbti.SecondsPerYear)
		}
	}
}
