// Real-traffic scenario: the Table IV methodology at example scale.
// A random SPLASH2/WCET benchmark mix is assigned to the cores of a
// 4-core mesh; the run is repeated with fresh mixes while the silicon
// (process-variation Vth draw) stays fixed, and the per-VC duty-cycle
// mean and standard deviation are reported for rr-no-sensor vs
// sensor-wise.
package main

import (
	"fmt"
	"log"
	"strings"

	"nbtinoc/internal/noc"
	"nbtinoc/internal/sim"
	"nbtinoc/internal/traffic"
)

func main() {
	const (
		iterations = 5
		vcs        = 2
		pvSeed     = 31
	)
	probe := sim.PortProbe{Node: 2, Port: noc.East}

	type stats struct{ duty [vcs]sim.Welford }
	results := map[string]*stats{"rr-no-sensor": {}, "sensor-wise": {}}
	md := -1

	for it := 0; it < iterations; it++ {
		mixSeed := uint64(1000 + it)
		var mixNames []string
		for policy, st := range results {
			cfg, err := sim.BaseConfig(4, vcs)
			if err != nil {
				log.Fatal(err)
			}
			cfg.PVSeed = pvSeed
			gen, err := traffic.NewRandomAppMix(2, 2, 0, mixSeed)
			if err != nil {
				log.Fatal(err)
			}
			mixNames = gen.Benchmarks()
			res, err := sim.Run(sim.RunConfig{
				Net:        cfg,
				PolicyName: policy,
				Warmup:     5_000,
				Measure:    80_000,
				Gen:        gen,
			}, []sim.PortProbe{probe})
			if err != nil {
				log.Fatal(err)
			}
			r := res.Ports[0]
			if md == -1 {
				md = r.MostDegraded
			}
			for vc, d := range r.Duty {
				st.duty[vc].Add(d)
			}
		}
		fmt.Printf("iteration %d: benchmark mix = %s\n", it+1, strings.Join(mixNames, ", "))
	}

	fmt.Printf("\n%s, %d iterations — most degraded VC: %d\n", probe.Label(), iterations, md)
	for _, policy := range []string{"rr-no-sensor", "sensor-wise"} {
		st := results[policy]
		fmt.Printf("%-14s", policy)
		for vc := 0; vc < vcs; vc++ {
			fmt.Printf("  VC%d %6.2f%% ±%5.2f", vc, st.duty[vc].Mean(), st.duty[vc].Std())
		}
		fmt.Println()
	}
	gap := results["rr-no-sensor"].duty[md].Mean() - results["sensor-wise"].duty[md].Mean()
	fmt.Printf("gap on most degraded VC: %.2f points (positive = sensor-wise wins)\n", gap)
}
