# Convenience targets for the nbtinoc reproduction.

GO ?= go

.PHONY: all build test test-race vet lint bench tables tables-quick examples fuzz cover clean

all: build vet lint test test-race

build:
	$(GO) build ./...

# nbtilint: custom determinism analyzers (internal/lint) run through
# go vet's -vettool protocol, so the build system handles package
# loading. The tree must stay at zero diagnostics; waivers need an
# //nbtilint:allow <analyzer> <reason> directive.
lint:
	$(GO) build -o bin/nbtilint ./cmd/nbtilint
	$(GO) vet -vettool=$(abspath bin/nbtilint) ./...

test:
	$(GO) test ./...

# The scenario drivers fan out across a worker pool; the race detector
# guards the no-shared-state invariant the parallel harness relies on.
test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Benchmark-scale regeneration of every table/figure (one iteration each).
bench:
	$(GO) test -bench=. -benchmem .

# Full default-window regeneration of every table (several minutes).
tables:
	$(GO) run ./cmd/tables -table all

tables-quick:
	$(GO) run ./cmd/tables -table all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/synthetic-sweep
	$(GO) run ./examples/realtraffic
	$(GO) run ./examples/areareport
	$(GO) run ./examples/lifetime
	$(GO) run ./examples/wearleveling

fuzz:
	$(GO) test -fuzz=FuzzReadTrace -fuzztime=30s ./internal/traffic

cover:
	$(GO) test -coverprofile=cover.out ./internal/... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
	rm -rf bin
