# Convenience targets for the nbtinoc reproduction.

GO ?= go
# BENCHTIME feeds -benchtime for `make bench`; CI smoke runs use 1x.
BENCHTIME ?= 1x
# BENCH_LABEL names the run recorded into BENCH_engine.json; the short
# commit hash makes each data point identifiable, and benchjson replaces
# a same-label run in place, so re-benching one commit never appends
# duplicates. Falls back to "current" outside a git checkout.
BENCH_LABEL ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo current)
# SEC_TOL is the allowed sec/op regression band (percent) for
# bench-check; wider than the allocs gate because 1x timings are noisy
# (benchjson's own default is 25%, but run-to-run swings on small
# containers reach ±30% even for second-long benchmarks).
SEC_TOL ?= 40
# COVER_MIN is the minimum acceptable total statement coverage (percent)
# for `make cover`; 0 disables the gate. CI pins a floor below the
# current total so coverage can only erode deliberately.
COVER_MIN ?= 0

# SERVE_ADDR is where `make serve` binds the simulation daemon.
SERVE_ADDR ?= 127.0.0.1:8310

.PHONY: all build test test-race test-debug vet lint bench bench-check tables tables-quick examples fuzz cover serve clean clean-cache

all: build vet lint test test-race

build:
	$(GO) build ./...

# nbtilint: custom determinism analyzers (internal/lint) run through
# go vet's -vettool protocol, so the build system handles package
# loading. The tree must stay at zero diagnostics; waivers need an
# //nbtilint:allow <analyzer> <reason> directive.
lint:
	$(GO) build -o bin/nbtilint ./cmd/nbtilint
	$(GO) vet -vettool=$(abspath bin/nbtilint) ./...

test:
	$(GO) test ./...

# The scenario drivers fan out across a worker pool; the race detector
# guards the no-shared-state invariant the parallel harness relies on.
test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# The nbtidebug build tag turns on the active-set invariant check
# (every unit skipped by Network.Step must be provably quiescent).
test-debug:
	$(GO) test -tags nbtidebug ./internal/noc ./internal/sim ./internal/core

# Benchmark-scale regeneration of every table/figure, recorded into the
# perf-trajectory file BENCH_engine.json via cmd/benchjson.
bench:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run '^$$' . | tee bench_output.txt
	bin/benchjson -label $(BENCH_LABEL) -o BENCH_engine.json -append < bench_output.txt

# bench plus the allocs/op and sec/op regression gates against the
# pinned baseline (the CI smoke job).
bench-check: bench
	bin/benchjson -label check -o /tmp/bench_check.json -baseline bench_baseline.json -sec-tol $(SEC_TOL) < bench_output.txt

# Full default-window regeneration of every table (several minutes).
tables:
	$(GO) run ./cmd/tables -table all

tables-quick:
	$(GO) run ./cmd/tables -table all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/synthetic-sweep
	$(GO) run ./examples/realtraffic
	$(GO) run ./examples/areareport
	$(GO) run ./examples/lifetime
	$(GO) run ./examples/wearleveling

fuzz:
	$(GO) test -fuzz=FuzzReadTrace -fuzztime=30s ./internal/traffic

# Build and run the simulation service locally (SIGINT/SIGTERM drains).
# Author request bodies with `nbtisim -emit-spec`, then:
#   curl -d @spec.json http://$(SERVE_ADDR)/jobs
serve:
	$(GO) build -o bin/nbtisimd ./cmd/nbtisimd
	bin/nbtisimd -addr $(SERVE_ADDR) -cache-dir .nbticache -v

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	@$(GO) tool cover -func=cover.out | tail -1
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{gsub(/%/, "", $$NF); print $$NF}'); \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { \
		if (t + 0 < min + 0) { printf "cover: total %.1f%% is below COVER_MIN=%s%%\n", t, min; exit 1 } \
		if (min + 0 > 0) printf "cover: total %.1f%% meets COVER_MIN=%s%%\n", t, min }'

clean:
	rm -f cover.out test_output.txt bench_output.txt cold.txt warm.txt /tmp/bench_check.json
	rm -f spec.json ref.json got.json nbtisimd.log
	rm -rf bin svc-cache

# The result cache survives a plain `clean` so local stores persist;
# clean-cache drops the repo-local store explicitly.
clean-cache:
	rm -rf .nbticache
