// Package nbtinoc is a from-scratch Go reproduction of "Sensor-wise
// methodology to face NBTI stress of NoC buffers" (Zoni & Fornaciari,
// DATE 2013): a cycle-accurate 2D-mesh network-on-chip simulator with
// power-gated virtual-channel buffers, an analytical NBTI aging model,
// process-variation sampling, per-VC degradation sensors, and the
// paper's cooperative pre-VA recovery policies, plus the experiment
// harness that regenerates every table and claim of the evaluation.
//
// The implementation lives under internal/; see README.md for the
// public entry points (cmd/nbtisim, cmd/tables, cmd/nbtisweep,
// cmd/tracegen, cmd/compare, the cmd/nbtilint determinism analyzers
// and the runnable examples), DESIGN.md for the system inventory,
// per-experiment index and static-analysis contract, and
// EXPERIMENTS.md for the paper-vs-measured record.
package nbtinoc
