// Package nbtinoc's top-level benchmarks regenerate each table and
// derived figure of the paper at benchmark scale, reporting the headline
// metric of every experiment via b.ReportMetric, plus engine
// micro-benchmarks. Run with:
//
//	go test -bench=. -benchmem
//
// Full-length regeneration (longer windows, paper-formatted output) is
// provided by cmd/tables.
package nbtinoc

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"nbtinoc/internal/area"
	"nbtinoc/internal/cache"
	"nbtinoc/internal/core"
	"nbtinoc/internal/noc"
	"nbtinoc/internal/service"
	"nbtinoc/internal/sim"
	"nbtinoc/internal/sweep"
	"nbtinoc/internal/traffic"
)

// benchTableOptions keeps per-iteration cost low so -bench=. terminates
// quickly while still producing meaningful duty-cycles. Parallelism 1 is
// the sequential reference; BenchmarkTableII_Parallel measures the
// worker-pool speedup against it.
func benchTableOptions() sim.TableOptions {
	opt := sim.DefaultTableOptions()
	opt.Warmup = 2_000
	opt.Measure = 20_000
	opt.Parallelism = 1
	return opt
}

// BenchmarkTableII regenerates Table II (synthetic traffic, 4 VCs) and
// reports the mean rr-vs-sensor-wise gap on the most degraded VC.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := sim.RunSyntheticTable(4, benchTableOptions())
		if err != nil {
			b.Fatal(err)
		}
		var gap float64
		for _, row := range tbl.Rows {
			gap += row.Gap
		}
		b.ReportMetric(gap/float64(len(tbl.Rows)), "gap_pts")
	}
}

// BenchmarkTableII_Parallel is BenchmarkTableII with the scenario grid
// fanned out across one worker per core (Parallelism 0); the ratio to
// BenchmarkTableII is the wall-clock speedup of the pool on this
// machine, bounded by GOMAXPROCS. The output is identical by
// construction (TestParallelMatchesSequential pins that).
func BenchmarkTableII_Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchTableOptions()
		opt.Parallelism = 0
		tbl, err := sim.RunSyntheticTable(4, opt)
		if err != nil {
			b.Fatal(err)
		}
		var gap float64
		for _, row := range tbl.Rows {
			gap += row.Gap
		}
		b.ReportMetric(gap/float64(len(tbl.Rows)), "gap_pts")
	}
}

// BenchmarkTableII_CacheCold is BenchmarkTableII through the result
// cache with an empty store every iteration: all misses, so it measures
// the overhead of key derivation plus entry persistence on top of the
// simulation itself. BenchmarkTableII_CacheWarm is the same grid served
// entirely from a pre-filled store; the ratio between the pair is the
// speedup memoization buys a repeated table run.
func BenchmarkTableII_CacheCold(b *testing.B) {
	root := b.TempDir()
	for i := 0; i < b.N; i++ {
		opt := benchTableOptions()
		opt.Cache = cache.Open(filepath.Join(root, strconv.Itoa(i)), cache.ReadWrite)
		tbl, err := sim.RunSyntheticTable(4, opt)
		if err != nil {
			b.Fatal(err)
		}
		var gap float64
		for _, row := range tbl.Rows {
			gap += row.Gap
		}
		b.ReportMetric(gap/float64(len(tbl.Rows)), "gap_pts")
		if st := opt.Cache.Stats(); st.Hits != 0 {
			b.Fatalf("cold store served hits: %+v", st)
		}
	}
}

// BenchmarkTableII_CacheWarm: see BenchmarkTableII_CacheCold.
func BenchmarkTableII_CacheWarm(b *testing.B) {
	dir := b.TempDir()
	fill := benchTableOptions()
	fill.Cache = cache.Open(dir, cache.ReadWrite)
	if _, err := sim.RunSyntheticTable(4, fill); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := benchTableOptions()
		opt.Cache = cache.Open(dir, cache.ReadOnly)
		tbl, err := sim.RunSyntheticTable(4, opt)
		if err != nil {
			b.Fatal(err)
		}
		var gap float64
		for _, row := range tbl.Rows {
			gap += row.Gap
		}
		b.ReportMetric(gap/float64(len(tbl.Rows)), "gap_pts")
		if st := opt.Cache.Stats(); st.Misses != 0 {
			b.Fatalf("warm store recomputed: %+v", st)
		}
	}
}

// benchSweepGrid is the campaign the sweep benchmarks run: the Table II
// policy/rate cross at benchmark scale, expanded through the sharded
// sweep layer instead of the table driver.
func benchSweepGrid() *sweep.Grid {
	return &sweep.Grid{
		Name: "bench",
		Base: sim.Scenario{
			Name: "bench", Cores: 4, VCs: 2, Policy: "baseline",
			Workload: "uniform", Rate: 0.1,
			Warmup: 2_000, Measure: 20_000, Seed: 1, PVSeed: 1,
		},
		Axes: sweep.Axes{
			Policies: []string{"baseline", "sensor-wise"},
			Rates:    []float64{0.1, 0.2, 0.3},
		},
		Probes: []string{"0:E"},
	}
}

// benchSweepRun drives one full coordinator round (expand, execute,
// merge) against dir and fails the benchmark on any unit error.
func benchSweepRun(b *testing.B, dir string) *sweep.Result {
	b.Helper()
	manifest, units, err := sweep.NewManifest(benchSweepGrid())
	if err != nil {
		b.Fatal(err)
	}
	c := &sweep.Coordinator{
		Manifest: manifest, Units: units,
		CacheDir: dir, Procs: 1, Workers: 1,
	}
	res, err := c.Run(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkSweepCold runs the sweep campaign against an empty cache
// every iteration: all misses, so it measures grid expansion, unit
// execution, entry persistence and the sequential merge end to end.
// BenchmarkSweepWarm replays the identical campaign against the filled
// cache — the resume/no-op path, whose cost is keying plus decode —
// and the ratio between the pair is what the cache-as-coordination
// layer buys a repeated or resumed campaign.
func BenchmarkSweepCold(b *testing.B) {
	root := b.TempDir()
	for i := 0; i < b.N; i++ {
		res := benchSweepRun(b, filepath.Join(root, strconv.Itoa(i)))
		// Every unit misses once; the merge pass then reads them back as
		// hits, so only the miss count distinguishes cold from warm.
		if res.Stats.Misses != int64(res.Done) {
			b.Fatalf("cold sweep: %d misses for %d units: %+v", res.Stats.Misses, res.Done, res.Stats)
		}
	}
}

// BenchmarkSweepWarm: see BenchmarkSweepCold.
func BenchmarkSweepWarm(b *testing.B) {
	dir := b.TempDir()
	benchSweepRun(b, dir)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := benchSweepRun(b, dir)
		if res.Stats.Misses != 0 {
			b.Fatalf("warm sweep recomputed: %+v", res.Stats)
		}
	}
}

// BenchmarkTableII_Inj010 is the Table II grid restricted to the
// 0.10 flits/cycle/node injection rate — the low-activity regime the
// activity-gated engine targets. BenchmarkTableII_Inj030 is the same
// grid at 0.30, where most units stay busy and the engine falls back
// to full-mesh work; together they bound the speedup across load.
func BenchmarkTableII_Inj010(b *testing.B) { benchTableIIAtRate(b, 0.1) }

// BenchmarkTableII_Inj030 is the high-load single-rate companion of
// BenchmarkTableII_Inj010.
func BenchmarkTableII_Inj030(b *testing.B) { benchTableIIAtRate(b, 0.3) }

func benchTableIIAtRate(b *testing.B, rate float64) {
	for i := 0; i < b.N; i++ {
		opt := benchTableOptions()
		opt.Rates = []float64{rate}
		tbl, err := sim.RunSyntheticTable(4, opt)
		if err != nil {
			b.Fatal(err)
		}
		var gap float64
		for _, row := range tbl.Rows {
			gap += row.Gap
		}
		b.ReportMetric(gap/float64(len(tbl.Rows)), "gap_pts")
	}
}

// BenchmarkTableIII regenerates Table III (synthetic traffic, 2 VCs).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := sim.RunSyntheticTable(2, benchTableOptions())
		if err != nil {
			b.Fatal(err)
		}
		var gap float64
		for _, row := range tbl.Rows {
			gap += row.Gap
		}
		b.ReportMetric(gap/float64(len(tbl.Rows)), "gap_pts")
	}
}

// BenchmarkTableIV regenerates Table IV (benchmark mixes, avg/std over
// iterations) and reports the mean gap across its rows.
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := sim.RealOptions{
			Iterations: 3, VCs: 2, Warmup: 1_000, Measure: 12_000, SeedBase: 1,
			Parallelism: 1,
		}
		tbl, err := sim.RunRealTable(opt)
		if err != nil {
			b.Fatal(err)
		}
		var gap float64
		for _, row := range tbl.Rows {
			gap += row.Gap
		}
		b.ReportMetric(gap/float64(len(tbl.Rows)), "gap_pts")
	}
}

// BenchmarkAreaReport regenerates the Section III-D overhead analysis
// and reports the total overhead percentage (paper: < 4%).
func BenchmarkAreaReport(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		rep, err := area.Estimate(area.Default45nm(), area.PaperSpec())
		if err != nil {
			b.Fatal(err)
		}
		total = rep.TotalPctOfBaseline
	}
	b.ReportMetric(total, "overhead_pct")
}

// BenchmarkVthSaving regenerates the ΔVth saving analysis behind the
// paper's 54.2% conclusion and reports the maximum saving observed.
func BenchmarkVthSaving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := sim.RunVthSaving(2, 3, benchTableOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tbl.MaxSavingPct, "max_saving_pct")
	}
}

// BenchmarkCooperation regenerates the cooperation ablation behind the
// paper's "up to 23%" claim and reports the maximum reduction.
func BenchmarkCooperation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := sim.RunCooperation(2, benchTableOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tbl.MaxReductionPts, "max_reduction_pts")
	}
}

// BenchmarkPerfImpact regenerates the NBTI/performance trade-off sweep
// (extension E1) and reports the sensor-wise latency penalty versus the
// baseline at the highest swept load.
func BenchmarkPerfImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := sim.RunPerfImpact(4, 2, 0, []float64{0.1, 0.3}, benchTableOptions())
		if err != nil {
			b.Fatal(err)
		}
		var base, sw float64
		for _, r := range tbl.Rows {
			if r.Rate != 0.3 {
				continue
			}
			switch r.Policy {
			case "baseline":
				base = r.AvgLatency
			case "sensor-wise":
				sw = r.AvgLatency
			}
		}
		b.ReportMetric(sw-base, "latency_penalty_cy")
	}
}

// BenchmarkEnergy regenerates the leakage/energy extension (E2) and
// reports the sensor-wise leakage saving.
func BenchmarkEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := sim.RunEnergy(4, 2, 0.1, benchTableOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tbl.Rows {
			if r.Policy == "sensor-wise" {
				b.ReportMetric(r.Report.LeakSavedPct, "leak_saved_pct")
			}
		}
	}
}

// benchNetwork builds a loaded 16-core network for engine benchmarks.
func benchNetwork(b *testing.B, policy noc.PolicyFactory) (*noc.Network, traffic.Generator) {
	b.Helper()
	cfg := noc.DefaultConfig()
	cfg.Policy = policy
	n, err := noc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := traffic.NewSynthetic(traffic.SyntheticConfig{
		Pattern: traffic.Uniform, Width: 4, Height: 4,
		Rate: 0.2, PacketLen: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return n, gen
}

// BenchmarkFigure1Baseline measures the per-cycle cost of the baseline
// microarchitecture of Fig. 1A (16-core mesh under load).
func BenchmarkFigure1Baseline(b *testing.B) {
	n, gen := benchNetwork(b, nil)
	emit := func(src, dst noc.NodeID, vnet, l int) {
		_ = n.Inject(src, dst, vnet, l)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Tick(uint64(i), emit)
		n.Step()
	}
}

// BenchmarkFigure1SensorWise measures the per-cycle cost of the
// NBTI-aware microarchitecture of Fig. 1B (sensors, Down_Up/Up_Down
// links, pre-VA policy) under the same load.
func BenchmarkFigure1SensorWise(b *testing.B) {
	n, gen := benchNetwork(b, core.NewSensorWise)
	emit := func(src, dst noc.NodeID, vnet, l int) {
		_ = n.Inject(src, dst, vnet, l)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Tick(uint64(i), emit)
		n.Step()
	}
}

// BenchmarkEngineIdle measures the per-cycle cost of a quiescent
// 16-core mesh: no traffic after construction, so once every policy
// settles, the active set is empty and a cycle costs only the
// active-set bookkeeping. This is the headline number of the
// activity-gated engine — before it, an idle cycle cost the same
// fifteen full-mesh sweeps as a loaded one.
func BenchmarkEngineIdle(b *testing.B) {
	cfg := noc.DefaultConfig()
	cfg.Policy = core.NewSensorWise
	n, err := noc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Let the initial policy transitions drain so steady state is
	// reached before timing starts.
	n.Run(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/cycle")
}

// BenchmarkEngineLowLoad measures the per-cycle cost at inj 0.02 —
// the sparse-activity regime the active set targets: most units idle
// most cycles, a few carrying traffic.
func BenchmarkEngineLowLoad(b *testing.B) {
	cfg := noc.DefaultConfig()
	cfg.Policy = core.NewSensorWise
	n, err := noc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := traffic.NewSynthetic(traffic.SyntheticConfig{
		Pattern: traffic.Uniform, Width: 4, Height: 4,
		Rate: 0.02, PacketLen: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	emit := func(src, dst noc.NodeID, vnet, l int) {
		_ = n.Inject(src, dst, vnet, l)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Tick(uint64(i), emit)
		n.Step()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/cycle")
}

// benchMeshCycles measures the per-cycle cost of a loaded side×side
// sensor-wise mesh — the big-mesh scaling points of the flat-arena
// engine. The injection rate matches BenchmarkTableII's low-load row
// so the active set stays sparse and the cost is dominated by the
// routers actually carrying traffic, not the mesh size.
func benchMeshCycles(b *testing.B, side int) {
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = side, side
	cfg.Policy = core.NewSensorWise
	n, err := noc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := traffic.NewSynthetic(traffic.SyntheticConfig{
		Pattern: traffic.Uniform, Width: side, Height: side,
		Rate: 0.1, PacketLen: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	emit := func(src, dst noc.NodeID, vnet, l int) {
		_ = n.Inject(src, dst, vnet, l)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Tick(uint64(i), emit)
		n.Step()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/cycle")
}

// BenchmarkMesh16 runs a 16×16 mesh (256 routers) under load.
func BenchmarkMesh16(b *testing.B) { benchMeshCycles(b, 16) }

// BenchmarkMesh32 runs a 32×32 mesh (1024 routers) under load.
func BenchmarkMesh32(b *testing.B) { benchMeshCycles(b, 32) }

// BenchmarkMesh32_LowRate is the Monte Carlo lifetime-campaign regime:
// a 32×32 mesh over a long window at an injection rate so low the
// network is idle for most of it. This is where the event-horizon
// engine's O(events) cost shows — geometric skip-sampling makes the
// generator free on quiet cycles and RunUntil bulk-jumps the idle
// spans — and the ff_ratio metric reports the fraction of simulated
// cycles covered by fast-forward.
func BenchmarkMesh32_LowRate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := noc.DefaultConfig()
		cfg.Width, cfg.Height = 32, 32
		gen, err := traffic.NewSynthetic(traffic.SyntheticConfig{
			Pattern: traffic.Uniform, Width: 32, Height: 32,
			Rate: 2e-6, PacketLen: 4, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(sim.RunConfig{
			Net: cfg, PolicyName: "sensor-wise",
			Warmup: 2_000, Measure: 500_000, Gen: gen,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(
			float64(res.Net.FastForwardedCycles())/float64(res.Net.Cycle()), "ff_ratio")
	}
}

// BenchmarkPolicyDecide measures one pre-VA decision of each policy.
func BenchmarkPolicyDecide(b *testing.B) {
	for _, tc := range []struct {
		name    string
		factory noc.PolicyFactory
	}{
		{"baseline", noc.NewBaseline},
		{"rr-no-sensor", core.NewRRNoSensor},
		{"sensor-wise", core.NewSensorWise},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p := tc.factory()
			in := noc.PolicyInput{
				NumVCs:       4,
				Idle:         []bool{true, false, true, true},
				Powered:      []bool{true, true, true, true},
				MostDegraded: 2,
				NewTraffic:   true,
			}
			out := make([]bool, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.Cycle = uint64(i)
				for j := range out {
					out[j] = false
				}
				p.DesiredPower(&in, out)
			}
		})
	}
}

// BenchmarkSyntheticTick measures workload generation throughput.
func BenchmarkSyntheticTick(b *testing.B) {
	gen, err := traffic.NewSynthetic(traffic.SyntheticConfig{
		Pattern: traffic.Uniform, Width: 8, Height: 8,
		Rate: 0.3, PacketLen: 4, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	sink := 0
	emit := func(src, dst noc.NodeID, vnet, l int) { sink++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Tick(uint64(i), emit)
	}
	_ = sink
}

// BenchmarkAppMixTick measures application-model generation throughput.
func BenchmarkAppMixTick(b *testing.B) {
	gen, err := traffic.NewRandomAppMix(4, 4, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	sink := 0
	emit := func(src, dst noc.NodeID, vnet, l int) { sink++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Tick(uint64(i), emit)
	}
	_ = sink
}

// BenchmarkSensorStudy regenerates the sensor-robustness extension and
// reports the reference sensor's gap over rr-no-sensor.
func BenchmarkSensorStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := sim.RunSensorStudy(4, 4, 0.1, benchTableOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tbl.Rows {
			if r.Variant == "reference" {
				b.ReportMetric(r.GapVsRR, "gap_pts")
			}
		}
	}
}

// BenchmarkCorners regenerates the operating-corner lifetime extension
// sweep and reports the lifetime-extension factor at the hottest corner.
func BenchmarkCorners(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := sim.RunCorners(4, 2, 0.1, 0.050,
			[]float64{350, 400}, []float64{1.2}, benchTableOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := tbl.Rows[len(tbl.Rows)-1]
		b.ReportMetric(last.ExtensionX, "lifetime_extension_x")
	}
}

// BenchmarkDSE regenerates the design-space exploration and reports the
// MD-VC duty at the paper's 4-VC/4-flit point.
func BenchmarkDSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := sim.RunDSE(4, 0.1, []int{2, 4}, []int{4}, benchTableOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range tbl.Rows {
			if r.VCs == 4 && r.Depth == 4 {
				b.ReportMetric(r.DutyMD, "duty_md_pct")
			}
		}
	}
}

// BenchmarkServiceWarmSubmit measures the nbtisimd request path once
// the result is known: an HTTP spec submission deduping against the
// finished job plus a result fetch. The job is driven to completion
// before the timer starts, so every measured iteration is the
// deterministic warm path (no polling variance).
func BenchmarkServiceWarmSubmit(b *testing.B) {
	srv, err := service.New(service.Config{
		Store:   cache.Open(b.TempDir(), cache.ReadWrite),
		Workers: 1,
		Clock:   func() int64 { return 0 },
	})
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = 2, 2
	cfg.VCsPerVNet = 2
	spec := sim.Spec{
		Net:     cfg,
		Policy:  sim.PolicySpec{Name: "sensor-wise"},
		Gen:     sim.GenSpec{Kind: "synthetic", Pattern: "uniform", Width: 2, Height: 2, Rate: 0.1, PacketLen: 4, Seed: 1},
		Warmup:  200,
		Measure: 2_000,
		Probes:  []sim.PortProbe{{Node: 0, Port: noc.East}},
	}
	body, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}
	id, err := sim.SpecKey(spec)
	if err != nil {
		b.Fatal(err)
	}
	post := func() int {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	post()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			b.Fatal(err)
		}
		var view service.JobView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if view.State == service.StateDone {
			break
		}
		if view.State == service.StateFailed || time.Now().After(deadline) {
			b.Fatalf("warmup job state %s: %s", view.State, view.Error)
		}
		time.Sleep(time.Millisecond)
	}

	// One unmeasured round of the exact loop body, so first-use costs
	// (dedup branch, result render, response buffers) don't distort a
	// -benchtime=1x smoke run.
	round := func() {
		if code := post(); code != http.StatusOK {
			b.Fatalf("warm submit: status %d, want 200 (dedup)", code)
		}
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/result?format=json")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("result: status %d", resp.StatusCode)
		}
	}
	round()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round()
	}
}
